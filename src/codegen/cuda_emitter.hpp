// CUDA source emission for original and fused kernels.
//
// The paper applied fusions by hand and names an automated source-to-source
// transformation as the natural next step (§V, §VIII). This module is that
// step for programs carrying executable bodies: it renders a
// LaunchDescriptor into compilable CUDA C, following the structure of the
// paper's Listings 6-7:
//
//   * one __global__ kernel per launch, parameters = external arrays + nz;
//   * pivot arrays staged in __shared__ tiles (one +1-padded tile per
//     pivot), loaded cooperatively each k-iteration; halo cells loaded by
//     specialised boundary warps (Listing 6's `if (ty == 0)` pattern);
//   * complex fusions recompute producer statements on the halo extension
//     and __syncthreads() between dependent segments;
//   * non-pivot reads go straight to global memory;
//   * a host-side driver that invokes the launches in order.
//
// The emitter is text-only (no CUDA toolchain required here); its output is
// validated structurally by tests and is what a user would hand to nvcc.
#pragma once

#include <string>

#include "fusion/transformer.hpp"

namespace kf {

struct CudaEmitOptions {
  /// Emit doubles (the default) or floats.
  bool single_precision = false;
  /// Emit the host-side driver function alongside the kernels.
  bool emit_driver = true;
  /// Indentation unit.
  std::string indent = "  ";
};

class CudaEmitter {
 public:
  /// `program` is the (expanded) program the launches refer to; kernels
  /// that participate must carry bodies.
  CudaEmitter(const Program& program, CudaEmitOptions options = CudaEmitOptions());

  /// CUDA source of one launch (original kernel or fused kernel).
  std::string emit_kernel(const LaunchDescriptor& launch) const;

  /// Full translation unit for a fused program: all kernels + driver.
  std::string emit_program(const FusedProgram& fused) const;

 private:
  const Program& program_;
  CudaEmitOptions options_;

  std::string scalar_type() const { return options_.single_precision ? "float" : "double"; }
};

/// C-identifier-safe version of a kernel/array name.
std::string sanitize_identifier(const std::string& name);

}  // namespace kf
