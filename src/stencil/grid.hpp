// 3D grids with halo padding — the data substrate for functional execution.
//
// A Grid3 spans the program grid (nx, ny, nz) plus a padding shell wide
// enough for every stencil offset the program dereferences (the paper pads
// arrays in the horizontal direction to avoid divergence; we pad all axes
// so out-of-domain reads are well-defined and identical between the
// original and fused executions).
#pragma once

#include <vector>

#include "ir/program.hpp"

namespace kf {

class Grid3 {
 public:
  Grid3() = default;
  Grid3(const GridDims& dims, int pad);

  const GridDims& dims() const noexcept { return dims_; }
  int pad() const noexcept { return pad_; }

  /// Valid index range per axis: [-pad, n + pad).
  double at(long i, long j, long k) const noexcept {
    return data_[index(i, j, k)];
  }
  double& at(long i, long j, long k) noexcept { return data_[index(i, j, k)]; }

  /// Fills every cell (padding included) with f(i, j, k) over the padded
  /// index space.
  template <typename F>
  void fill(F&& f) {
    for (long k = -pad_; k < dims_.nz + pad_; ++k) {
      for (long j = -pad_; j < dims_.ny + pad_; ++j) {
        for (long i = -pad_; i < dims_.nx + pad_; ++i) {
          at(i, j, k) = f(i, j, k);
        }
      }
    }
  }

  /// Max |a - b| over interior cells. Grids must have equal dims.
  static double max_abs_diff(const Grid3& a, const Grid3& b);

  std::size_t cell_count() const noexcept { return data_.size(); }

 private:
  GridDims dims_;
  int pad_ = 0;
  long sx_ = 0, sy_ = 0;  // strides
  std::vector<double> data_;

  std::size_t index(long i, long j, long k) const noexcept {
    return static_cast<std::size_t>((k + pad_) * sy_ + (j + pad_) * sx_ + (i + pad_));
  }
};

/// One grid per program array, plus the deterministic initial condition.
class GridSet {
 public:
  /// Pads every grid by `extra_pad` beyond the program's widest offset.
  explicit GridSet(const Program& program, int extra_pad = 2);

  Grid3& grid(ArrayId a);
  const Grid3& grid(ArrayId a) const;

  int num_arrays() const noexcept { return static_cast<int>(grids_.size()); }
  int pad() const noexcept { return pad_; }

  /// Re-applies the deterministic initial condition: smooth, strictly
  /// positive values (safe as divisors), distinct per array.
  void reset();

 private:
  const Program& program_;
  int pad_ = 0;
  std::vector<Grid3> grids_;
};

/// Widest offset magnitude (any axis) dereferenced anywhere in the program,
/// considering both access metadata and bodies.
int max_offset_radius(const Program& program);

}  // namespace kf
