#include "stencil/block_executor.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace kf {
namespace {

/// Per-block tile for one produced array: covers the block extent plus the
/// extension, full z column, storing doubles. Cells outside the domain are
/// never written (they mirror the global padding).
class LocalTile {
 public:
  LocalTile(long i0, long j0, long bx, long by, int ext, const GridDims& dims)
      : i0_(i0 - ext), j0_(j0 - ext), w_(bx + 2L * ext), h_(by + 2L * ext), nz_(dims.nz) {
    data_.assign(static_cast<std::size_t>(w_ * h_ * nz_), 0.0);
  }

  bool covers(long i, long j) const noexcept {
    return i >= i0_ && i < i0_ + w_ && j >= j0_ && j < j0_ + h_;
  }

  double& at(long i, long j, long k) noexcept {
    return data_[static_cast<std::size_t>((k * h_ + (j - j0_)) * w_ + (i - i0_))];
  }
  double at(long i, long j, long k) const noexcept {
    return data_[static_cast<std::size_t>((k * h_ + (j - j0_)) * w_ + (i - i0_))];
  }

 private:
  long i0_, j0_, w_, h_, nz_;
  std::vector<double> data_;
};

/// First-touch tracking for one array within one block: a real kernel
/// stages each needed cell into SMEM (or L1) once per block; only that
/// first fetch is a GMEM transaction, repeats are on-chip.
class TouchMask {
 public:
  TouchMask(long i0, long j0, long bx, long by, int ext, const GridDims& dims)
      : i0_(i0 - ext),
        j0_(j0 - ext),
        w_(bx + 2L * ext),
        h_(by + 2L * ext),
        nz_(dims.nz + 2L * ext),
        k0_(-ext) {
    seen_.assign(static_cast<std::size_t>(w_ * h_ * nz_), 0);
  }

  /// Returns true on the first touch of (i, j, k); false on repeats.
  bool first_touch(long i, long j, long k) noexcept {
    const std::size_t idx = static_cast<std::size_t>(
        ((k - k0_) * h_ + (j - j0_)) * w_ + (i - i0_));
    if (seen_[idx]) return false;
    seen_[idx] = 1;
    return true;
  }

 private:
  long i0_, j0_, w_, h_, nz_, k0_;
  std::vector<char> seen_;
};

}  // namespace

BlockExecutor::BlockExecutor(const Program& program) : program_(program) {
  KF_REQUIRE(program.fully_executable(),
             "block execution requires bodies for every kernel");
}

std::vector<int> required_halo_extensions(std::span<const StencilStatement> body) {
  std::vector<int> ext(body.size(), 0);
  // Backward sweep: statement s must be valid out to the widest reach of
  // any consumer of its output, plus that consumer's own extension.
  for (std::size_t s = body.size(); s-- > 0;) {
    for (std::size_t t = s + 1; t < body.size(); ++t) {
      const StencilPattern reads = body[t].expr.pattern_for(body[s].out);
      if (reads.empty()) continue;
      int radius = 0;
      for (const Offset& o : reads.offsets()) {
        radius = std::max({radius, std::abs(o.dx), std::abs(o.dy)});
      }
      ext[s] = std::max(ext[s], ext[t] + radius);
    }
  }
  return ext;
}

std::vector<int> BlockExecutor::required_extensions(KernelId kernel) const {
  return required_halo_extensions(program_.kernel(kernel).body);
}

ExecCounters BlockExecutor::run_launch(GridSet& grids, KernelId kernel) const {
  const KernelInfo& info = program_.kernel(kernel);
  const GridDims& dims = program_.grid();
  const LaunchConfig& launch = program_.launch();
  const auto& body = info.body;
  KF_REQUIRE(!body.empty(), "kernel '" << info.name << "' has no body");

  const std::vector<int> ext = required_extensions(kernel);
  const int max_ext = ext.empty() ? 0 : *std::max_element(ext.begin(), ext.end());

  // Widest dereference any statement makes, for the first-touch masks.
  int reach = max_ext;
  for (const StencilStatement& stmt : body) {
    for (const auto& [array, o] : stmt.expr.loads()) {
      (void)array;
      reach = std::max({reach, max_ext + std::abs(o.dx), max_ext + std::abs(o.dy),
                        max_ext + std::abs(o.dz)});
    }
  }

  // Which arrays are produced in this launch, and by which first statement.
  std::map<ArrayId, std::size_t> first_writer;
  for (std::size_t s = 0; s < body.size(); ++s) {
    first_writer.try_emplace(body[s].out, s);
  }

  // Staging grids so all blocks observe the pre-launch state.
  std::map<ArrayId, Grid3> staging;
  for (const auto& [array, stmt] : first_writer) {
    (void)stmt;
    staging.emplace(array, grids.grid(array));
  }

  const long blocks_x = (dims.nx + launch.block_x - 1) / launch.block_x;
  const long blocks_y = (dims.ny + launch.block_y - 1) / launch.block_y;
  const long num_blocks = blocks_x * blocks_y;

  ExecCounters total;

#pragma omp parallel
  {
    ExecCounters local_counters;

#pragma omp for schedule(static)
    for (long block = 0; block < num_blocks; ++block) {
      const long bi = block % blocks_x;
      const long bj = block / blocks_x;
      const long i0 = bi * launch.block_x;
      const long j0 = bj * launch.block_y;
      const long bx = std::min<long>(launch.block_x, dims.nx - i0);
      const long by = std::min<long>(launch.block_y, dims.ny - j0);

      // One local tile per produced array; an array becomes "live" (its
      // tile readable) once a statement writing it has fully completed.
      std::map<ArrayId, LocalTile> tiles;
      std::map<ArrayId, bool> live;
      for (const auto& [array, stmt] : first_writer) {
        (void)stmt;
        tiles.emplace(array, LocalTile(i0, j0, bx, by, max_ext, dims));
        live.emplace(array, false);
      }
      // First-touch masks: a block fetches each needed global cell once
      // (the staged-load semantics of the generated kernels); repeats are
      // served on-chip.
      std::map<ArrayId, TouchMask> touched;

      for (std::size_t s = 0; s < body.size(); ++s) {
        const StencilStatement& stmt = body[s];
        LocalTile& out_tile = tiles.at(stmt.out);
        const int e = ext[s];

        const long lo_i = std::max<long>(0, i0 - e);
        const long hi_i = std::min<long>(dims.nx, i0 + bx + e);
        const long lo_j = std::max<long>(0, j0 - e);
        const long hi_j = std::min<long>(dims.ny, j0 + by + e);

        for (long k = 0; k < dims.nz; ++k) {
          for (long j = lo_j; j < hi_j; ++j) {
            for (long i = lo_i; i < hi_i; ++i) {
              const double value = stmt.expr.eval([&](ArrayId a, const Offset& o) {
                const long ri = i + o.dx;
                const long rj = j + o.dy;
                const long rk = k + o.dz;
                // A produced array's tile serves reads of in-domain cells.
                // Center self-reads during the array's *first* writing
                // statement see the pre-launch state (tile not yet live);
                // later they read the tile in-place, which still holds the
                // previous statement's value because this sweep has not
                // reached (ri, rj, rk) yet (offset self-reads are banned).
                if (ri >= 0 && ri < dims.nx && rj >= 0 && rj < dims.ny && rk >= 0 &&
                    rk < dims.nz) {
                  const auto it = live.find(a);
                  if (it != live.end() && it->second) {
                    local_counters.smem_reads += 1.0;
                    return tiles.at(a).at(ri, rj, rk);
                  }
                }
                auto [it2, inserted] = touched.try_emplace(
                    a, TouchMask(i0, j0, bx, by, reach, dims));
                (void)inserted;
                if (it2->second.first_touch(ri, rj, rk)) {
                  local_counters.gmem_loads += 1.0;
                } else {
                  local_counters.smem_reads += 1.0;
                }
                return grids.grid(a).at(ri, rj, rk);
              });
              out_tile.at(i, j, k) = value;
            }
          }
        }
        live.at(stmt.out) = true;
      }

      // Flush block interiors into the staging grids.
      for (auto& [array, tile] : tiles) {
        Grid3& dst = staging.at(array);
        for (long k = 0; k < dims.nz; ++k) {
          for (long j = j0; j < j0 + by; ++j) {
            for (long i = i0; i < i0 + bx; ++i) {
              dst.at(i, j, k) = tile.at(i, j, k);
              local_counters.gmem_stores += 1.0;
            }
          }
        }
      }
    }

#pragma omp critical(kf_block_executor_counters)
    total += local_counters;
  }

  // Commit: the launch boundary is a global barrier.
  for (auto& [array, grid] : staging) {
    grids.grid(array) = std::move(grid);
  }
  return total;
}

ExecCounters BlockExecutor::run(GridSet& grids) const {
  ExecCounters total;
  for (KernelId k = 0; k < program_.num_kernels(); ++k) {
    total += run_launch(grids, k);
  }
  return total;
}

}  // namespace kf
