// Block executor — CUDA-like tiled execution of (fused) kernels.
//
// Emulates how a generated fused kernel runs on the device: the horizontal
// plane is tiled into thread blocks; arrays produced inside the launch live
// in per-block local tiles (the emulated SMEM); consumer statements read
// producers' values from those tiles; and because SMEM is incoherent across
// blocks, producer statements are *recomputed on a halo extension* wide
// enough for every downstream offset read — the paper's temporal-blocking
// resolution with specialised warps (§II-D.2).
//
// Required halo widths are derived exactly, per statement, by a backward
// sweep over the statement list (e_s = max over consumers t of e_t + r_t),
// so the executor reproduces the reference semantics bit-for-bit — that is
// the functional-correctness check for any fusion. Domain-edge blocks do
// not recompute outside the domain interior: reads falling outside see the
// untouched global padding, exactly as the reference does.
//
// Counters model device traffic at element granularity: reads of values
// produced in-launch count as SMEM; first-touch and old-value reads count
// as GMEM loads; interior flushes count as stores.
#pragma once

#include <span>
#include <vector>

#include "stencil/reference_executor.hpp"

namespace kf {

/// Per-statement halo extensions for a statement sequence: a backward
/// sweep propagating every consumer's offset reach onto its producers
/// (e_s = max over consumers t of e_t + r_t). Statement s must be computed
/// on the block extended by extensions[s] cells for downstream offset
/// reads to be satisfiable from on-chip data.
std::vector<int> required_halo_extensions(std::span<const StencilStatement> body);

class BlockExecutor {
 public:
  /// `program` is the (fused or original) program whose kernels carry
  /// bodies; blocks are `launch().block_x x block_y` columns spanning nz.
  explicit BlockExecutor(const Program& program);

  /// Executes one launch (kernel) blockwise. All blocks observe the
  /// pre-launch state; writes commit at the end (a kernel launch is a
  /// global barrier).
  ExecCounters run_launch(GridSet& grids, KernelId kernel) const;

  /// Executes every launch in invocation order.
  ExecCounters run(GridSet& grids) const;

  /// The per-statement halo extensions the launch needs (index-aligned with
  /// the kernel's body). Exposed for tests and for validating the cost
  /// model's halo estimates.
  std::vector<int> required_extensions(KernelId kernel) const;

 private:
  const Program& program_;
};

}  // namespace kf
