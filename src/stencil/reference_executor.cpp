#include "stencil/reference_executor.hpp"

#include "util/error.hpp"

namespace kf {

ReferenceExecutor::ReferenceExecutor(const Program& program) : program_(program) {
  KF_REQUIRE(program.fully_executable(),
             "reference execution requires bodies for every kernel");
}

ExecCounters ReferenceExecutor::run_kernel(GridSet& grids, KernelId kernel) const {
  const KernelInfo& info = program_.kernel(kernel);
  const GridDims& dims = program_.grid();
  ExecCounters counters;

  for (const StencilStatement& stmt : info.body) {
    Grid3& out = grids.grid(stmt.out);
    const long reads_per_site = static_cast<long>(stmt.expr.loads().size());
    // Each pass writes only `out` at the center; the k-slices are
    // independent (self-reads are center-only by validation), so the pass
    // parallelises over k.
#pragma omp parallel for schedule(static)
    for (long k = 0; k < dims.nz; ++k) {
      for (long j = 0; j < dims.ny; ++j) {
        for (long i = 0; i < dims.nx; ++i) {
          const double value = stmt.expr.eval([&](ArrayId a, const Offset& o) {
            return grids.grid(a).at(i + o.dx, j + o.dy, k + o.dz);
          });
          out.at(i, j, k) = value;
        }
      }
    }
    counters.gmem_loads +=
        static_cast<double>(reads_per_site) * dims.total_sites();
    counters.gmem_stores += static_cast<double>(dims.total_sites());
  }
  return counters;
}

ExecCounters ReferenceExecutor::run(GridSet& grids) const {
  ExecCounters counters;
  for (KernelId k = 0; k < program_.num_kernels(); ++k) {
    counters += run_kernel(grids, k);
  }
  return counters;
}

}  // namespace kf
