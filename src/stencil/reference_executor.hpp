// Reference (sequential, grid-wide) execution semantics.
//
// Each StencilStatement is one grid-wide pass over the interior: the value
// of every read is the state *before the pass began* for self-reads at the
// center, and the fully-updated state of all earlier passes otherwise.
// Kernels run in invocation order. This is the semantics the original
// host-side kernel sequence has on a GPU (each kernel launch is a global
// barrier), and it is the ground truth the fused block executor must
// reproduce bit-for-bit.
#pragma once

#include "stencil/grid.hpp"

namespace kf {

/// Element-granular operation counters (for the Fusion Efficiency metric).
struct ExecCounters {
  double gmem_loads = 0.0;   ///< element reads from global arrays
  double gmem_stores = 0.0;  ///< element writes to global arrays
  double smem_reads = 0.0;   ///< element reads served by emulated SMEM

  double gmem_ops() const noexcept { return gmem_loads + gmem_stores; }

  ExecCounters& operator+=(const ExecCounters& other) noexcept {
    gmem_loads += other.gmem_loads;
    gmem_stores += other.gmem_stores;
    smem_reads += other.smem_reads;
    return *this;
  }
};

class ReferenceExecutor {
 public:
  /// The program must be fully executable (bodies everywhere) and outlive
  /// the executor.
  explicit ReferenceExecutor(const Program& program);

  /// Runs one kernel's statements as grid-wide passes.
  ExecCounters run_kernel(GridSet& grids, KernelId kernel) const;

  /// Runs the whole program in invocation order.
  ExecCounters run(GridSet& grids) const;

 private:
  const Program& program_;
};

}  // namespace kf
