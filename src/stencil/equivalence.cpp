#include "stencil/equivalence.hpp"

#include <algorithm>

#include "stencil/reference_executor.hpp"
#include "util/error.hpp"

namespace kf {

EquivalenceReport verify_fusion(const Program& original, const FusedProgram& fused,
                                const ExpansionResult* expansion, double tolerance) {
  KF_REQUIRE(original.fully_executable(), "original program needs bodies");
  KF_REQUIRE(fused.program.fully_executable(), "fused program needs bodies");

  EquivalenceReport report;
  report.tolerance = tolerance;

  // Ground truth: reference semantics on the original program.
  GridSet ref_grids(original);
  ReferenceExecutor(original).run(ref_grids);

  // Original program under block semantics (for the FE baseline counters).
  {
    GridSet block_grids(original);
    report.original_counters = BlockExecutor(original).run(block_grids);
    // Self-check: the block executor must agree with the reference on the
    // *unfused* program too.
    for (ArrayId a = 0; a < original.num_arrays(); ++a) {
      const double diff = Grid3::max_abs_diff(ref_grids.grid(a), block_grids.grid(a));
      KF_CHECK(diff <= tolerance,
               "block executor diverges from reference on unfused program, array '"
                   << original.array(a).name << "' (diff " << diff << ")");
    }
  }

  // Fused program under block semantics.
  GridSet fused_grids(fused.program);
  report.fused_counters = BlockExecutor(fused.program).run(fused_grids);

  // Compare each original array against its (final-version) counterpart.
  for (ArrayId a = 0; a < original.num_arrays(); ++a) {
    const std::string& name = original.array(a).name;
    ArrayId target = kInvalidArray;
    if (expansion != nullptr) {
      const ArrayId final_version = expansion->final_version(a);
      target = fused.program.find_array(expansion->program.array(final_version).name);
    } else {
      target = fused.program.find_array(name);
    }
    KF_REQUIRE(target != kInvalidArray,
               "array '" << name << "' has no counterpart in the fused program");
    const double diff =
        Grid3::max_abs_diff(ref_grids.grid(a), fused_grids.grid(target));
    report.per_array.emplace_back(name, diff);
    report.max_abs_diff = std::max(report.max_abs_diff, diff);
  }
  report.equivalent = report.max_abs_diff <= tolerance;
  return report;
}

}  // namespace kf
