// Functional-equivalence verification of fusions.
//
// The correctness oracle for the whole pipeline: the original program run
// under reference (grid-wide) semantics must produce the same arrays as the
// fused program run under block/tile semantics with halo recomputation.
// When the fusion was planned on an expanded program, each original array
// is compared against its final redundant version.
#pragma once

#include <string>
#include <vector>

#include "fusion/transformer.hpp"
#include "graph/array_expansion.hpp"
#include "stencil/block_executor.hpp"

namespace kf {

struct EquivalenceReport {
  bool equivalent = false;
  double max_abs_diff = 0.0;
  double tolerance = 0.0;
  /// Per-array worst difference (original array name, max |diff|).
  std::vector<std::pair<std::string, double>> per_array;
  ExecCounters original_counters;  ///< block-executed original program
  ExecCounters fused_counters;     ///< block-executed fused program
};

/// Runs `original` under reference semantics and `fused` under block
/// semantics from identical initial conditions and compares results.
/// `expansion` maps original arrays to final versions when the fusion was
/// planned on an expanded program (pass nullptr otherwise). As a byproduct
/// both programs are also run under the block executor to produce the
/// element-exact traffic counters the Fusion Efficiency metric uses.
EquivalenceReport verify_fusion(const Program& original, const FusedProgram& fused,
                                const ExpansionResult* expansion = nullptr,
                                double tolerance = 1e-9);

}  // namespace kf
