#include "stencil/grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace kf {

Grid3::Grid3(const GridDims& dims, int pad) : dims_(dims), pad_(pad) {
  KF_REQUIRE(pad >= 0, "padding must be non-negative");
  sx_ = dims_.nx + 2L * pad_;
  sy_ = sx_ * (dims_.ny + 2L * pad_);
  data_.assign(static_cast<std::size_t>(sy_ * (dims_.nz + 2L * pad_)), 0.0);
}

double Grid3::max_abs_diff(const Grid3& a, const Grid3& b) {
  KF_REQUIRE(a.dims_.nx == b.dims_.nx && a.dims_.ny == b.dims_.ny &&
                 a.dims_.nz == b.dims_.nz,
             "grid dimension mismatch");
  double worst = 0.0;
  for (long k = 0; k < a.dims_.nz; ++k) {
    for (long j = 0; j < a.dims_.ny; ++j) {
      for (long i = 0; i < a.dims_.nx; ++i) {
        worst = std::max(worst, std::abs(a.at(i, j, k) - b.at(i, j, k)));
      }
    }
  }
  return worst;
}

int max_offset_radius(const Program& program) {
  int r = 0;
  for (const KernelInfo& kernel : program.kernels()) {
    for (const ArrayAccess& acc : kernel.accesses) {
      for (const Offset& o : acc.pattern.offsets()) {
        r = std::max({r, std::abs(o.dx), std::abs(o.dy), std::abs(o.dz)});
      }
    }
    for (const StencilStatement& stmt : kernel.body) {
      for (const auto& [array, o] : stmt.expr.loads()) {
        (void)array;
        r = std::max({r, std::abs(o.dx), std::abs(o.dy), std::abs(o.dz)});
      }
    }
  }
  return r;
}

GridSet::GridSet(const Program& program, int extra_pad) : program_(program) {
  KF_REQUIRE(extra_pad >= 0, "extra_pad must be non-negative");
  pad_ = max_offset_radius(program) + extra_pad;
  grids_.reserve(static_cast<std::size_t>(program.num_arrays()));
  for (ArrayId a = 0; a < program.num_arrays(); ++a) {
    grids_.emplace_back(program.grid(), pad_);
  }
  reset();
}

Grid3& GridSet::grid(ArrayId a) {
  KF_REQUIRE(a >= 0 && a < num_arrays(), "array id out of range");
  return grids_[static_cast<std::size_t>(a)];
}

const Grid3& GridSet::grid(ArrayId a) const {
  KF_REQUIRE(a >= 0 && a < num_arrays(), "array id out of range");
  return grids_[static_cast<std::size_t>(a)];
}

void GridSet::reset() {
  for (ArrayId a = 0; a < num_arrays(); ++a) {
    // Phase is keyed on the *base* name (version suffixes "@n" stripped) so
    // that expanded redundant arrays inherit their original's initial
    // condition — required for expanded-program executions to be
    // value-comparable with the unexpanded reference.
    std::string base = program_.array(a).name;
    if (const auto at = base.find('@'); at != std::string::npos) base.resize(at);
    const double phase =
        static_cast<double>(std::hash<std::string>{}(base) % 6283) / 1000.0;
    grids_[static_cast<std::size_t>(a)].fill([phase](long i, long j, long k) {
      // Smooth, strictly positive (>= 0.5), distinct per array: safe as a
      // divisor and sensitive to misplaced offsets.
      return 1.5 + 0.45 * std::sin(0.11 * i + 0.07 * j + 0.05 * k + phase) +
             0.05 * std::cos(0.031 * (i - j + 2 * k) - phase);
    });
  }
}

}  // namespace kf
