// CAM-HOMME dynamical-core model (paper §VI-B.2).
//
// Statistical model of the GPU-ported HOMME dynamical core: 43 kernels
// over 27 arrays (Table I), with a sparser sharing structure than
// SCALE-LES — the paper reports only ~21% reducible traffic and a smaller
// best fusion (22 of 43 kernels into 9).
//
// The paper quotes a 4x26x101 spectral-element problem (np=4, 26 levels,
// 101 elements); as a flat finite-difference grid that is degenerate, so
// the model uses an equivalent-site-count grid of 208x32x26 (~173k sites,
// matching nelem*np^2 columns x nlev levels). Documented in DESIGN.md.
#pragma once

#include "ir/program.hpp"

namespace kf {

Program homme(GridDims grid = GridDims{208, 32, 26},
              LaunchConfig launch = LaunchConfig{32, 4});

}  // namespace kf
