#include "apps/weather_zoo.hpp"

#include "apps/homme.hpp"
#include "apps/scale_les.hpp"
#include "apps/synthetic.hpp"

namespace kf {
namespace {

SyntheticSpec base_spec(const char* name, int kernels, int arrays, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = name;
  spec.kernels = kernels;
  spec.arrays = arrays;
  spec.grid = GridDims{512, 64, 40};
  spec.seed = seed;
  return spec;
}

}  // namespace

Program wrf() {
  // WRF: large kernel count, moderate sharing, long time-split chains -> 24%.
  SyntheticSpec spec = base_spec("wrf", 122, 46, 0x13f2a7);
  spec.reuse_bias = 0.40;
  spec.producer_bias = 0.32;
  spec.producer_window = 8;
  spec.expandable = 6;
  spec.rewrite_accumulate_prob = 0.22;
  spec.phases = 14;
  spec.thread_load = 6;
  spec.center_read_fraction = 0.40;
  return build_synthetic(spec);
}

Program asuca() {
  // ASUCA: already heavily hand-fused GPU port; little sharing left -> 17%.
  SyntheticSpec spec = base_spec("asuca", 115, 58, 0xa57ca);
  spec.reuse_bias = 0.20;
  spec.producer_bias = 0.30;
  spec.producer_window = 5;
  spec.expandable = 3;
  spec.rewrite_accumulate_prob = 0.3;
  spec.phases = 20;
  spec.thread_load = 5;
  spec.center_read_fraction = 0.50;
  return build_synthetic(spec);
}

Program mitgcm() {
  // MITgcm: ocean dycore, few arrays shared across many kernels -> 22%.
  SyntheticSpec spec = base_spec("mitgcm", 94, 31, 0x3179c3);
  spec.reuse_bias = 0.38;
  spec.producer_bias = 0.36;
  spec.producer_window = 7;
  spec.expandable = 4;
  spec.rewrite_accumulate_prob = 0.25;
  spec.phases = 14;
  spec.thread_load = 6;
  spec.center_read_fraction = 0.42;
  return build_synthetic(spec);
}

Program cosmo() {
  // COSMO: compact dycore with dense array reuse -> 38%.
  SyntheticSpec spec = base_spec("cosmo", 35, 24, 0xc05310);
  spec.reuse_bias = 0.62;
  spec.producer_bias = 0.33;
  spec.producer_window = 10;
  spec.expandable = 4;
  spec.rewrite_accumulate_prob = 0.05;
  spec.phases = 3;
  spec.thread_load = 7;
  spec.center_read_fraction = 0.30;
  return build_synthetic(spec);
}

std::vector<WeatherAppEntry> weather_zoo() {
  std::vector<WeatherAppEntry> zoo;
  zoo.push_back({"SCALE-LES", scale_les(), 41.0});
  zoo.push_back({"WRF", wrf(), 24.0});
  zoo.push_back({"ASUCA", asuca(), 17.0});
  zoo.push_back({"MITgcm", mitgcm(), 22.0});
  zoo.push_back({"HOMME", homme(), 21.0});
  zoo.push_back({"COSMO", cosmo(), 38.0});
  return zoo;
}

}  // namespace kf
