// The weather-application zoo of Table I.
//
// Statistical models of the six applications the paper analysed with ROSE:
// kernel/array counts are taken from Table I; each model's dependency shape
// is tuned so the reducible-traffic bound computed by this library's
// analysis lands near the published column-3 percentage.
//
//   application  kernels  arrays  reducible traffic
//   SCALE-LES      142      64      41%
//   WRF            122      46      24%
//   ASUCA          115      58      17%
//   MITgcm          94      31      22%
//   HOMME           43      27      21%
//   COSMO           35      24      38%
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace kf {

Program wrf();
Program asuca();
Program mitgcm();
Program cosmo();

struct WeatherAppEntry {
  std::string name;
  Program program;
  double paper_reducible_pct = 0.0;  ///< Table I column 3
};

/// All six Table I applications (including SCALE-LES and HOMME).
std::vector<WeatherAppEntry> weather_zoo();

}  // namespace kf
