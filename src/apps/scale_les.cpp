#include "apps/scale_les.hpp"

#include "apps/synthetic.hpp"

namespace kf {

Program scale_les_rk18(GridDims grid, LaunchConfig launch) {
  Program program("scale_les_rk18", grid, launch);

  const ArrayId DENS = program.add_array("DENS");
  const ArrayId MOMX = program.add_array("MOMX");
  const ArrayId MOMY = program.add_array("MOMY");
  const ArrayId MOMZ = program.add_array("MOMZ");
  const ArrayId RHOT = program.add_array("RHOT");
  const ArrayId VELX = program.add_array("VELX");
  const ArrayId VELY = program.add_array("VELY");
  const ArrayId VELZ = program.add_array("VELZ");
  const ArrayId PRES = program.add_array("PRES");
  const ArrayId POTT = program.add_array("POTT");
  const ArrayId DDIV = program.add_array("DDIV");
  const ArrayId NDIF = program.add_array("NDIF");
  const ArrayId QFLX = program.add_array("QFLX");  // expandable: written twice
  const ArrayId SFLX = program.add_array("SFLX");  // expandable: written twice
  const ArrayId DENS_t = program.add_array("DENS_t");
  const ArrayId RHOT_t = program.add_array("RHOT_t");
  const ArrayId MOMX_t = program.add_array("MOMX_t");
  const ArrayId MOMY_t = program.add_array("MOMY_t");
  const ArrayId DENS_RK = program.add_array("DENS_RK");
  const ArrayId RHOT_RK = program.add_array("RHOT_RK");
  const ArrayId MOMX_RK = program.add_array("MOMX_RK");
  const ArrayId MOMY_RK = program.add_array("MOMY_RK");

  const double dtrk = 1.0 / 3.0;
  const Offset c{0, 0, 0};
  const Offset xm{-1, 0, 0};
  const Offset xp{1, 0, 0};
  const Offset ym{0, -1, 0};
  const Offset yp{0, 1, 0};
  const Offset zp{0, 0, 1};

  auto ld = [](ArrayId a, Offset o) { return Expr::load(a, o); };
  auto k = [](double v) { return Expr::constant(v); };

  auto add = [&](const char* name, std::vector<StencilStatement> body, int regs) {
    KernelInfo kern;
    kern.name = name;
    kern.body = std::move(body);
    kern.derive_metadata_from_body();
    kern.regs_per_thread = regs;
    kern.addr_regs = 12;
    program.add_kernel(std::move(kern));
  };

  // K_1..K_3: momentum -> velocity diagnostics (interpolated density).
  add("k01_velz", {{VELZ, ld(MOMZ, c) / (k(0.5) * (ld(DENS, c) + ld(DENS, zp)))}}, 32);
  add("k02_velx", {{VELX, ld(MOMX, c) / (k(0.5) * (ld(DENS, c) + ld(DENS, xp)))}}, 32);
  add("k03_vely", {{VELY, ld(MOMY, c) / (k(0.5) * (ld(DENS, c) + ld(DENS, yp)))}}, 32);

  // K_4/K_5: thermodynamic diagnostics.
  add("k04_pres", {{PRES, k(0.28) * ld(RHOT, c) * (ld(RHOT, c) / ld(DENS, c))}}, 28);
  add("k05_pott", {{POTT, ld(RHOT, c) / ld(DENS, c)}}, 24);

  // K_6/K_7: divergence damping and numerical diffusion source terms.
  add("k06_ddiv",
      {{DDIV, (ld(MOMX, xp) - ld(MOMX, c)) + (ld(MOMY, yp) - ld(MOMY, c)) +
                  (ld(MOMZ, zp) - ld(MOMZ, c))}},
      36);
  add("k07_numdiff",
      {{NDIF, k(0.08) * (ld(DENS, xm) + ld(DENS, xp) + ld(DENS, ym) + ld(DENS, yp) -
                         k(4.0) * ld(DENS, c))}},
      34);

  // K_8/K_9: density fluxes — first write generation of QFLX/SFLX.
  add("k08_qflx_dens",
      {{QFLX, ld(VELX, c) * (k(0.5) * (ld(DENS, c) + ld(DENS, xp)))}}, 30);
  add("k09_sflx_dens",
      {{SFLX, ld(VELY, c) * (k(0.5) * (ld(DENS, c) + ld(DENS, yp)))}}, 30);

  // K_10/K_11: density tendency (reads the first QFLX/SFLX generation) + RK update.
  add("k10_tend_dens",
      {{DENS_t, (ld(QFLX, xm) - ld(QFLX, c)) + (ld(SFLX, ym) - ld(SFLX, c)) +
                    ld(NDIF, c)}},
      34);
  add("k11_update_dens", {{DENS_RK, ld(DENS, c) + k(dtrk) * ld(DENS_t, c)}}, 22);

  // K_12/K_13: heat fluxes — second write generation (expandable!).
  add("k12_qflx_rhot",
      {{QFLX, ld(VELX, c) * (k(0.5) * (ld(POTT, c) + ld(POTT, xp)))}}, 30);
  add("k13_sflx_rhot",
      {{SFLX, ld(VELY, c) * (k(0.5) * (ld(POTT, c) + ld(POTT, yp)))}}, 30);

  // K_14/K_15: potential-temperature tendency + RK update.
  add("k14_tend_rhot",
      {{RHOT_t, (ld(QFLX, xm) - ld(QFLX, c)) + (ld(SFLX, ym) - ld(SFLX, c)) +
                    k(0.5) * ld(NDIF, c)}},
      34);
  add("k15_update_rhot", {{RHOT_RK, ld(RHOT, c) + k(dtrk) * ld(RHOT_t, c)}}, 22);

  // K_16/K_17: momentum tendencies from pressure gradient + divergence damping.
  add("k16_tend_momx",
      {{MOMX_t, (ld(PRES, c) - ld(PRES, xp)) + k(0.1) * (ld(DDIV, xp) - ld(DDIV, c))}},
      32);
  add("k17_tend_momy",
      {{MOMY_t, (ld(PRES, c) - ld(PRES, yp)) + k(0.1) * (ld(DDIV, yp) - ld(DDIV, c))}},
      32);

  // K_18: RK update of the momenta.
  add("k18_update_mom",
      {{MOMX_RK, ld(MOMX, c) + k(dtrk) * ld(MOMX_t, c)},
       {MOMY_RK, ld(MOMY, c) + k(dtrk) * ld(MOMY_t, c)}},
      26);

  program.validate();
  return program;
}

Program scale_les(GridDims grid, LaunchConfig launch) {
  SyntheticSpec spec;
  spec.name = "scale_les";
  spec.kernels = 142;
  spec.arrays = 64;
  spec.grid = grid;
  spec.launch = launch;
  spec.seed = 0x5ca1e1e5;
  // Tuned so the maximal-fusion reducible-traffic bound lands near the
  // paper's 41% for SCALE-LES (Table I): dense sharing, moderate chains,
  // several expandable flux arrays.
  spec.reuse_bias = 0.60;
  spec.producer_bias = 0.35;
  spec.producer_window = 10;
  spec.expandable = 10;
  spec.rewrite_accumulate_prob = 0.05;
  spec.phases = 4;
  spec.thread_load = 5;
  spec.center_read_fraction = 0.22;
  spec.min_inputs = 2;
  spec.max_inputs = 4;
  // SCALE-LES originals are lean on registers (simple flux/advection
  // arithmetic), keeping fused kernels clear of the register cliffs.
  spec.regs_base = 18;
  spec.regs_per_load = 1;
  return build_synthetic(spec);
}

}  // namespace kf
