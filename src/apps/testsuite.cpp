#include "apps/testsuite.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace kf {

Program make_testsuite_program(const TestSuiteConfig& config) {
  SyntheticSpec spec;
  spec.name = "cloverleaf_suite_" + testsuite_id(config);
  spec.kernels = config.kernels;
  spec.arrays = config.arrays;
  spec.grid = config.grid;
  spec.launch = config.launch;
  spec.with_bodies = config.with_bodies;

  // Seed mixes the attribute tuple so every benchmark is distinct but
  // reproducible.
  std::uint64_t seed = config.seed;
  for (std::uint64_t v : {static_cast<std::uint64_t>(config.kernels),
                          static_cast<std::uint64_t>(config.arrays),
                          static_cast<std::uint64_t>(config.data_copies),
                          static_cast<std::uint64_t>(config.sharing_set_size),
                          static_cast<std::uint64_t>(config.thread_load),
                          static_cast<std::uint64_t>(config.kinship)}) {
    seed = mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL));
  }
  spec.seed = seed;

  // ---- map Table V attributes onto the generator's shape parameters ----
  spec.expandable = config.data_copies;
  spec.rewrite_accumulate_prob = 0.7;
  spec.thread_load = config.thread_load;

  // Sharing-set cardinality: each kernel reads 2..4 arrays; the chance a
  // read reuses a touched array controls how many kernels pile onto one
  // array. |K(D)| ~ 1 + kernels*reads*reuse/arrays; solve for reuse_bias.
  const double avg_reads = 0.5 * (spec.min_inputs + spec.max_inputs);
  const double wanted = static_cast<double>(config.sharing_set_size - 1);
  const double reuse = wanted * config.arrays /
                       (static_cast<double>(config.kernels) * avg_reads);
  spec.reuse_bias = std::clamp(reuse, 0.15, 0.95);

  // Kinship: deeper producer chains come from a higher producer bias and a
  // tighter window.
  spec.producer_bias = std::clamp(0.12 * config.kinship, 0.15, 0.6);
  spec.producer_window = std::max(4, 24 / config.kinship);

  return build_synthetic(spec);
}

std::string testsuite_id(const TestSuiteConfig& config) {
  return strprintf("k%d_a%d_c%d_s%d_t%d_kin%d", config.kernels, config.arrays,
                   config.data_copies, config.sharing_set_size, config.thread_load,
                   config.kinship);
}

}  // namespace kf
