#include "apps/motivating_example.hpp"

#include "util/error.hpp"

namespace kf {

Program motivating_example(GridDims grid, LaunchConfig launch) {
  Program program("fig3_motivating_example", grid, launch);

  const ArrayId A = program.add_array("A");
  const ArrayId B = program.add_array("B");
  const ArrayId C = program.add_array("C");
  const ArrayId D = program.add_array("D");
  const ArrayId Mx = program.add_array("Mx");
  const ArrayId Mn = program.add_array("Mn");
  const ArrayId R = program.add_array("R");
  const ArrayId T = program.add_array("T");
  const ArrayId V = program.add_array("V");
  const ArrayId W = program.add_array("W");
  const ArrayId P = program.add_array("P");
  const ArrayId Q = program.add_array("Q");
  const ArrayId U = program.add_array("U");

  const double dtr = 0.25;
  const Offset c{0, 0, 0};
  const Offset xm{-1, 0, 0};
  const Offset ym{0, -1, 0};
  const Offset xym{-1, -1, 0};

  auto ld = [](ArrayId a, Offset o) { return Expr::load(a, o); };
  auto k = [](double v) { return Expr::constant(v); };

  // Listing 1 — Kern_A: A = B + C;  D = dtr*(A + A(-1,0) + A(0,-1) + A(-1,-1))
  {
    KernelInfo kern;
    kern.name = "Kern_A";
    kern.body.push_back({A, ld(B, c) + ld(C, c)});
    kern.body.push_back(
        {D, k(dtr) * (ld(A, c) + ld(A, xm) + ld(A, ym) + ld(A, xym))});
    kern.derive_metadata_from_body();
    kern.regs_per_thread = 40;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  }

  // Listing 2 — Kern_B: Mx/Mn from backward differences of A.
  {
    KernelInfo kern;
    kern.name = "Kern_B";
    kern.body.push_back({Mx, k(dtr) * ((ld(A, xm) - ld(A, c)) + (ld(A, ym) - ld(A, c)) +
                                       (ld(A, xym) - ld(A, c)))});
    kern.body.push_back({Mn, k(dtr) * ((ld(A, c) - ld(A, xm)) + (ld(A, c) - ld(A, ym)) +
                                       (ld(A, c) - ld(A, xym)))});
    kern.derive_metadata_from_body();
    kern.regs_per_thread = 48;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  }

  // Listing 3 — Kern_C: R = T(-1,0) + T + T(0,-1);  W = min(V(-1,0), V)
  {
    KernelInfo kern;
    kern.name = "Kern_C";
    kern.body.push_back({R, ld(T, xm) + ld(T, c) + ld(T, ym)});
    kern.body.push_back({W, Expr::min(ld(V, xm), ld(V, c))});
    kern.derive_metadata_from_body();
    kern.regs_per_thread = 120;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  }

  // Listing 4 — Kern_D: P = (Q(-1,0)*Q(0,-1)/Q) + (Q/Q(-1,0)*Q(0,-1))
  {
    KernelInfo kern;
    kern.name = "Kern_D";
    kern.body.push_back({P, (ld(Q, xm) * ld(Q, ym) / ld(Q, c)) +
                                (ld(Q, c) / ld(Q, xm) * ld(Q, ym))});
    kern.derive_metadata_from_body();
    kern.regs_per_thread = 110;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  }

  // Listing 5 — Kern_E:
  // U = (T(-1,0)+T+T(0,-1)) - (Q*(Q(-1,0)-Q(0,-1))) * (V(-1,0)/V)
  {
    KernelInfo kern;
    kern.name = "Kern_E";
    kern.body.push_back({U, (ld(T, xm) + ld(T, c) + ld(T, ym)) -
                                (ld(Q, c) * (ld(Q, xm) - ld(Q, ym))) *
                                    (ld(V, xm) / ld(V, c))});
    kern.derive_metadata_from_body();
    kern.regs_per_thread = 140;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  }

  program.validate();
  return program;
}

FusionPlan motivating_plan(const Program& program) {
  const KernelId a = program.find_kernel("Kern_A");
  const KernelId b = program.find_kernel("Kern_B");
  const KernelId c = program.find_kernel("Kern_C");
  const KernelId d = program.find_kernel("Kern_D");
  const KernelId e = program.find_kernel("Kern_E");
  KF_REQUIRE(a >= 0 && b >= 0 && c >= 0 && d >= 0 && e >= 0,
             "program is not the motivating example");
  return FusionPlan::from_groups(program.num_kernels(), {{a, b}, {c, d, e}});
}

}  // namespace kf
