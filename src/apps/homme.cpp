#include "apps/homme.hpp"

#include "apps/synthetic.hpp"

namespace kf {

Program homme(GridDims grid, LaunchConfig launch) {
  SyntheticSpec spec;
  spec.name = "homme";
  spec.kernels = 43;
  spec.arrays = 27;
  spec.grid = grid;
  spec.launch = launch;
  spec.seed = 0x40113e;
  // Sparser sharing than SCALE-LES and stronger producer chains: the
  // spectral-element dycore passes state linearly through its stages, so
  // less traffic is reducible (~21%, Table I).
  spec.reuse_bias = 0.40;
  spec.producer_bias = 0.5;
  spec.producer_window = 6;
  spec.expandable = 4;
  spec.rewrite_accumulate_prob = 0.25;
  spec.phases = 10;
  spec.thread_load = 8;
  spec.center_read_fraction = 0.45;
  spec.regs_base = 38;
  spec.regs_per_load = 3;
  spec.min_inputs = 2;
  spec.max_inputs = 3;
  return build_synthetic(spec);
}

}  // namespace kf
