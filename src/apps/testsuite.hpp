// The CloverLeaf-derived test suite (paper Table V).
//
// A controlled family of benchmarks sweeping the attributes the paper
// identifies as the performance-relevant dimensions of the fusion problem:
//
//   attribute          min  max  step
//   #kernels            10  100    10
//   #arrays             20  200    20
//   #data copies         2   10     2   (expandable-array rewrites)
//   sharing-set size     2    8     2
//   avg thread load      4   12     4
//   kinship              2    5     1
//
// Each benchmark is a deterministic SyntheticSpec instantiation seeded from
// its attribute tuple.
#pragma once

#include <string>
#include <vector>

#include "apps/synthetic.hpp"

namespace kf {

struct TestSuiteConfig {
  int kernels = 20;
  int arrays = 40;
  int data_copies = 4;      ///< expandable-array rewrite count
  int sharing_set_size = 4; ///< target |K(D)| for shared arrays
  int thread_load = 8;      ///< average ThrLD of shared reads
  int kinship = 3;          ///< target producer-chain depth
  std::uint64_t seed = 1;
  GridDims grid{512, 512, 32};
  LaunchConfig launch{32, 4};
  bool with_bodies = false;
};

/// Table V attribute bounds (for sweep drivers).
struct TestSuiteRanges {
  static constexpr int kernels_min = 10, kernels_max = 100, kernels_step = 10;
  static constexpr int arrays_min = 20, arrays_max = 200, arrays_step = 20;
  static constexpr int copies_min = 2, copies_max = 10, copies_step = 2;
  static constexpr int sharing_min = 2, sharing_max = 8, sharing_step = 2;
  static constexpr int load_min = 4, load_max = 12, load_step = 4;
  static constexpr int kinship_min = 2, kinship_max = 5, kinship_step = 1;
};

/// Builds one benchmark of the suite.
Program make_testsuite_program(const TestSuiteConfig& config);

/// Short id string like "k20_a40_c4_s4_t8_kin3" (for report rows).
std::string testsuite_id(const TestSuiteConfig& config);

}  // namespace kf
