// Synthetic stencil-program generator.
//
// The paper's subjects — weather-model routines and the CloverLeaf-derived
// test suite — share one statistical shape: a long kernel sequence over a
// pool of grid arrays, with read-only physics inputs, producer/consumer
// (RAW) chains, shared multi-reader arrays, and a few arrays rewritten by
// several kernels (the expandable class). build_synthetic() draws programs
// from that family under a seeded RNG; all app models (Table I zoo,
// SCALE-LES, HOMME) and the Table V test suite are specific parameter
// points of it. Small configurations can carry executable bodies so the
// stencil engine can validate fusions end-to-end.
#pragma once

#include <cstdint>

#include "ir/program.hpp"

namespace kf {

struct SyntheticSpec {
  std::string name = "synthetic";
  int kernels = 20;
  int arrays = 40;
  GridDims grid{256, 256, 32};
  LaunchConfig launch{32, 4};
  std::uint64_t seed = 42;

  // ---- dependency-structure shape ----
  /// Probability an input is drawn from recently *written* arrays
  /// (creates RAW chains and order-of-execution constraints).
  double producer_bias = 0.35;
  /// Probability an input reuses an already-touched array (creates sharing
  /// sets); otherwise a fresh array is drawn from the pool.
  double reuse_bias = 0.75;
  /// Window of recent writes that producer-biased inputs draw from.
  int producer_window = 12;
  int min_inputs = 2;
  int max_inputs = 4;
  /// Number of arrays that receive a second (or later) write generation —
  /// the expandable read-write class.
  int expandable = 3;
  /// When the array pool is exhausted, a kernel's output reuses an array;
  /// with this probability the reuse is an *accumulation* (read-modify-
  /// write, unexpandable, serialising) rather than a pure overwrite
  /// (expandable). Real codes mix both.
  double rewrite_accumulate_prob = 0.5;
  /// Program phases separated by host-transfer/communication barriers
  /// (§II-C): kernels are split into this many contiguous chunks that can
  /// never fuse across the boundary. Weather models synchronise (halo
  /// exchange, I/O) between dynamical-core stages, so real apps have
  /// several of these.
  int phases = 1;

  // ---- per-kernel characteristics ----
  /// Target thread load of shared-array reads (Table V attribute).
  int thread_load = 6;
  /// Fraction of reads that are center-only (pass-through style).
  double center_read_fraction = 0.35;
  int regs_base = 22;
  int regs_per_load = 2;

  /// Generate executable bodies (WeightedSum/Min/Mul statements matching
  /// the access patterns). Keep grids small when enabled.
  bool with_bodies = false;
};

/// Deterministic for a given spec. The result passes Program::validate().
Program build_synthetic(const SyntheticSpec& spec);

}  // namespace kf
