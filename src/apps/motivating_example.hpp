// The paper's Fig. 3 motivating example: five CUDA kernels (A-E) over 3D
// arrays, fused into Kernel X = {A, B} (complex fusion: B consumes the A
// array produced by Kernel A at backward-difference offsets, so X needs a
// barrier and a recomputed halo layer) and Kernel Y = {C, D, E} (simple
// fusion around the read-only shared arrays T, Q, V).
//
// The kernels carry the exact listing bodies, so the example exercises the
// whole pipeline: legality, descriptor construction, timing simulation,
// the three projection models (whose disagreement on Kernel Y is the
// paper's §IV argument), and bit-exact functional validation.
#pragma once

#include "fusion/fusion_plan.hpp"
#include "ir/program.hpp"

namespace kf {

/// The default grid matches the paper's micro-benchmark scale: 64 thread
/// blocks of 128 threads (the worked example after Eq. 8 uses B = 64,
/// Thr = 128) over nz = 64, putting the K20X-simulated kernels in the
/// paper's hundreds-of-microseconds regime. Kernels C/D/E carry the high
/// register weights of real division-heavy stencils — the resource
/// pressure that makes fusing them into Kernel Y unprofitable (§IV).
Program motivating_example(GridDims grid = GridDims{256, 32, 64},
                           LaunchConfig launch = LaunchConfig{32, 4});

/// The fusion of Fig. 3: {Kern_A, Kern_B} -> X, {Kern_C, Kern_D, Kern_E} -> Y.
FusionPlan motivating_plan(const Program& program);

}  // namespace kf
