// A concrete CloverLeaf-style hydrodynamics step (paper §VI-B.1).
//
// Fourteen kernels of one Lagrangian-Eulerian timestep of the compressible
// Euler equations on a 2D Cartesian grid (nz = 1), with executable bodies:
// equation of state, viscosity, timestep reduction, PdV, acceleration,
// volume/mass fluxes, cell advection and field reset. The reset kernels
// rewrite the step's input fields, giving the program genuine expandable
// read-write arrays. The standard problem size is 960^2 cells (the paper's
// 962^2 without the halo shell).
#pragma once

#include "ir/program.hpp"

namespace kf {

Program cloverleaf(GridDims grid = GridDims{960, 960, 1},
                   LaunchConfig launch = LaunchConfig{32, 4});

}  // namespace kf
