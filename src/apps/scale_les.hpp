// SCALE-LES models (paper §II-B.1, §VI-B.2).
//
// Two levels of fidelity:
//
//  * scale_les_rk18() — the 18-kernel 3rd-order Runge-Kutta routine of
//    Figs. 1-2, hand-built with executable bodies: velocity diagnostics,
//    pressure/potential-temperature, flux kernels writing the expandable
//    QFLX/SFLX arrays twice (K_8 -> K_10 and K_12 -> K_14 in the paper's
//    numbering), tendency kernels and RK updates.
//
//  * scale_les() — the full dynamical core's statistical model: 142 kernels
//    over 64 arrays (Table I), generated synthetically with the dependency
//    shape tuned so that the reducible-traffic bound lands near the paper's
//    41%. Metadata-only (no bodies): exactly what the search and the
//    projection model consume.
//
// The paper's single-node problem size 1280x32x32 is used for both.
#pragma once

#include "ir/program.hpp"

namespace kf {

Program scale_les_rk18(GridDims grid = GridDims{1280, 32, 32},
                       LaunchConfig launch = LaunchConfig{32, 4});

Program scale_les(GridDims grid = GridDims{1280, 32, 32},
                  LaunchConfig launch = LaunchConfig{32, 4});

}  // namespace kf
