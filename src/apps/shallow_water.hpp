// A 2D shallow-water equations (SWE) solver step — a second hand-written,
// fully executable workload alongside CloverLeaf.
//
// One two-stage Runge-Kutta step of the conservative SWE on a Cartesian
// grid: height h and momenta hu, hv; per stage: face fluxes in x and y for
// all three fields (donor-cell style), a bed-friction source, and the
// update. The second stage rewrites the stage-1 flux arrays, making them
// genuine expandable read-write arrays, and the final update rewrites the
// prognostic fields. 17 kernels over 16 arrays with dense, realistic
// sharing — a good stress case for complex fusions (every flux kernel's
// output is consumed at offset by the update).
#pragma once

#include "ir/program.hpp"

namespace kf {

Program shallow_water(GridDims grid = GridDims{512, 512, 1},
                      LaunchConfig launch = LaunchConfig{32, 4});

}  // namespace kf
