#include "apps/shallow_water.hpp"

namespace kf {

Program shallow_water(GridDims grid, LaunchConfig launch) {
  Program program("shallow_water_step", grid, launch);

  const ArrayId h = program.add_array("h");
  const ArrayId hu = program.add_array("hu");
  const ArrayId hv = program.add_array("hv");
  const ArrayId bed = program.add_array("bed");      // bathymetry, read-only
  const ArrayId fh_x = program.add_array("fh_x");    // fluxes (expandable: 2 stages)
  const ArrayId fh_y = program.add_array("fh_y");
  const ArrayId fu_x = program.add_array("fu_x");
  const ArrayId fu_y = program.add_array("fu_y");
  const ArrayId fv_x = program.add_array("fv_x");
  const ArrayId fv_y = program.add_array("fv_y");
  const ArrayId src_u = program.add_array("src_u");
  const ArrayId src_v = program.add_array("src_v");
  const ArrayId h1 = program.add_array("h1");        // stage-1 state
  const ArrayId hu1 = program.add_array("hu1");
  const ArrayId hv1 = program.add_array("hv1");
  const ArrayId speed = program.add_array("speed");  // diagnostic, write-only

  const double dt = 0.01;
  const double g = 9.81;
  const double cf = 0.002;
  const Offset c{0, 0, 0};
  const Offset xm{-1, 0, 0};
  const Offset xp{1, 0, 0};
  const Offset ym{0, -1, 0};
  const Offset yp{0, 1, 0};

  auto ld = [](ArrayId a, Offset o) { return Expr::load(a, o); };
  auto k = [](double v) { return Expr::constant(v); };

  auto add = [&](const char* name, std::vector<StencilStatement> body, int regs) {
    KernelInfo kern;
    kern.name = name;
    kern.body = std::move(body);
    kern.derive_metadata_from_body();
    kern.regs_per_thread = regs;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  };

  // Face fluxes use an upwind-flavoured average of the two adjacent cells.
  auto flux_x = [&](ArrayId q) {
    return k(0.5) * (ld(q, c) + ld(q, xm)) -
           k(0.1) * (ld(q, c) - ld(q, xm));
  };
  auto flux_y = [&](ArrayId q) {
    return k(0.5) * (ld(q, c) + ld(q, ym)) -
           k(0.1) * (ld(q, c) - ld(q, ym));
  };

  // ---- stage 1: fluxes of the current state ----
  add("swe_fh_x", {{fh_x, flux_x(hu)}}, 26);
  add("swe_fh_y", {{fh_y, flux_y(hv)}}, 26);
  add("swe_fu_x",
      {{fu_x, flux_x(hu) * flux_x(hu) / (k(0.5) * (ld(h, c) + ld(h, xm))) +
                  k(0.5 * g) * (k(0.5) * (ld(h, c) + ld(h, xm))) *
                      (k(0.5) * (ld(h, c) + ld(h, xm)))}},
      44);
  add("swe_fu_y", {{fu_y, flux_y(hu) * flux_y(hv) / (k(0.5) * (ld(h, c) + ld(h, ym)))}},
      40);
  add("swe_fv_x", {{fv_x, flux_x(hv) * flux_x(hu) / (k(0.5) * (ld(h, c) + ld(h, xm)))}},
      40);
  add("swe_fv_y",
      {{fv_y, flux_y(hv) * flux_y(hv) / (k(0.5) * (ld(h, c) + ld(h, ym))) +
                  k(0.5 * g) * (k(0.5) * (ld(h, c) + ld(h, ym))) *
                      (k(0.5) * (ld(h, c) + ld(h, ym)))}},
      44);

  // ---- sources: bed slope + friction ----
  add("swe_src_u",
      {{src_u, k(-g) * ld(h, c) * (ld(bed, xp) - ld(bed, xm)) * k(0.5) -
                   k(cf) * ld(hu, c)}},
      30);
  add("swe_src_v",
      {{src_v, k(-g) * ld(h, c) * (ld(bed, yp) - ld(bed, ym)) * k(0.5) -
                   k(cf) * ld(hv, c)}},
      30);

  // ---- stage-1 update into the provisional state ----
  add("swe_update1_h",
      {{h1, ld(h, c) - k(dt) * ((ld(fh_x, xp) - ld(fh_x, c)) +
                                (ld(fh_y, yp) - ld(fh_y, c)))}},
      34);
  add("swe_update1_hu",
      {{hu1, ld(hu, c) - k(dt) * ((ld(fu_x, xp) - ld(fu_x, c)) +
                                  (ld(fu_y, yp) - ld(fu_y, c)) - ld(src_u, c))}},
      36);
  add("swe_update1_hv",
      {{hv1, ld(hv, c) - k(dt) * ((ld(fv_x, xp) - ld(fv_x, c)) +
                                  (ld(fv_y, yp) - ld(fv_y, c)) - ld(src_v, c))}},
      36);

  // ---- stage 2: recompute the h fluxes from the provisional state
  //      (second write generation of fh_x / fh_y -> expandable) ----
  add("swe_fh_x_2", {{fh_x, k(0.5) * (ld(hu1, c) + ld(hu1, xm)) -
                               k(0.1) * (ld(hu1, c) - ld(hu1, xm))}},
      26);
  add("swe_fh_y_2", {{fh_y, k(0.5) * (ld(hv1, c) + ld(hv1, ym)) -
                               k(0.1) * (ld(hv1, c) - ld(hv1, ym))}},
      26);

  // ---- final update averages the stages (rewrites the prognostics) ----
  add("swe_update2_h",
      {{h, k(0.5) * (ld(h, c) + ld(h1, c)) -
               k(0.5 * dt) * ((ld(fh_x, xp) - ld(fh_x, c)) +
                              (ld(fh_y, yp) - ld(fh_y, c)))}},
      34);
  add("swe_update2_hu",
      {{hu, k(0.5) * (ld(hu, c) + ld(hu1, c)) + k(0.5 * dt) * ld(src_u, c)}}, 28);
  add("swe_update2_hv",
      {{hv, k(0.5) * (ld(hv, c) + ld(hv1, c)) + k(0.5 * dt) * ld(src_v, c)}}, 28);

  // ---- diagnostic ----
  add("swe_speed",
      {{speed, (ld(hu, c) * ld(hu, c) + ld(hv, c) * ld(hv, c)) / (ld(h, c) * ld(h, c))}},
      24);

  program.validate();
  return program;
}

}  // namespace kf
