#include "apps/cloverleaf.hpp"

namespace kf {

Program cloverleaf(GridDims grid, LaunchConfig launch) {
  Program program("cloverleaf_step", grid, launch);

  const ArrayId density0 = program.add_array("density0");
  const ArrayId energy0 = program.add_array("energy0");
  const ArrayId pressure = program.add_array("pressure");
  const ArrayId soundspeed = program.add_array("soundspeed");
  const ArrayId viscosity = program.add_array("viscosity");
  const ArrayId xvel0 = program.add_array("xvel0");
  const ArrayId yvel0 = program.add_array("yvel0");
  const ArrayId xvel1 = program.add_array("xvel1");
  const ArrayId yvel1 = program.add_array("yvel1");
  const ArrayId vol_flux_x = program.add_array("vol_flux_x");
  const ArrayId vol_flux_y = program.add_array("vol_flux_y");
  const ArrayId mass_flux_x = program.add_array("mass_flux_x");
  const ArrayId mass_flux_y = program.add_array("mass_flux_y");
  const ArrayId pre_vol = program.add_array("pre_vol");
  const ArrayId density1 = program.add_array("density1");
  const ArrayId energy1 = program.add_array("energy1");
  const ArrayId dt_field = program.add_array("dt_field");

  const Offset c{0, 0, 0};
  const Offset xm{-1, 0, 0};
  const Offset xp{1, 0, 0};
  const Offset ym{0, -1, 0};
  const Offset yp{0, 1, 0};

  auto ld = [](ArrayId a, Offset o) { return Expr::load(a, o); };
  auto k = [](double v) { return Expr::constant(v); };

  auto add = [&](const char* name, std::vector<StencilStatement> body, int regs) {
    KernelInfo kern;
    kern.name = name;
    kern.body = std::move(body);
    kern.derive_metadata_from_body();
    kern.regs_per_thread = regs;
    kern.addr_regs = 10;
    program.add_kernel(std::move(kern));
  };

  // 1. Equation of state: p = (gamma-1) * rho * e; c_s^2 ~ gamma * p / rho.
  add("ideal_gas",
      {{pressure, k(0.4) * ld(density0, c) * ld(energy0, c)},
       {soundspeed, k(1.4) * (k(0.4) * ld(density0, c) * ld(energy0, c)) /
                        ld(density0, c)}},
      24);

  // 2. Artificial viscosity from velocity gradients and pressure curvature.
  add("viscosity_kernel",
      {{viscosity,
        k(0.1) * ((ld(xvel0, xp) - ld(xvel0, c)) * (ld(xvel0, xp) - ld(xvel0, c)) +
                  (ld(yvel0, yp) - ld(yvel0, c)) * (ld(yvel0, yp) - ld(yvel0, c))) *
            (ld(pressure, c) + k(0.25) * (ld(pressure, xm) + ld(pressure, xp) +
                                          ld(pressure, ym) + ld(pressure, yp)))}},
      42);

  // 3. Timestep control field (reduction input).
  add("calc_dt",
      {{dt_field, Expr::min(ld(soundspeed, c) + ld(viscosity, c),
                            Expr::max(ld(xvel0, c), ld(yvel0, c)) + k(0.5))}},
      22);

  // 4. Cell volume change from the velocity field (PdV predictor).
  add("pdv_predict",
      {{pre_vol, k(1.0) + k(0.01) * ((ld(xvel0, xp) - ld(xvel0, c)) +
                                     (ld(yvel0, yp) - ld(yvel0, c)))}},
      26);

  // 5. PdV update of density and energy.
  add("pdv_update",
      {{density1, ld(density0, c) * ld(pre_vol, c)},
       {energy1, ld(energy0, c) -
                     k(0.01) * ld(pressure, c) * (ld(pre_vol, c) - k(1.0))}},
      30);

  // 6/7. Acceleration by pressure + viscosity gradients.
  add("accelerate_x",
      {{xvel1, ld(xvel0, c) - k(0.02) * ((ld(pressure, c) - ld(pressure, xm)) +
                                         (ld(viscosity, c) - ld(viscosity, xm)))}},
      30);
  add("accelerate_y",
      {{yvel1, ld(yvel0, c) - k(0.02) * ((ld(pressure, c) - ld(pressure, ym)) +
                                         (ld(viscosity, c) - ld(viscosity, ym)))}},
      30);

  // 8/9. Volume fluxes on cell faces.
  add("flux_calc_x",
      {{vol_flux_x, k(0.25) * (ld(xvel0, c) + ld(xvel0, xm) + ld(xvel1, c) +
                               ld(xvel1, xm))}},
      24);
  add("flux_calc_y",
      {{vol_flux_y, k(0.25) * (ld(yvel0, c) + ld(yvel0, ym) + ld(yvel1, c) +
                               ld(yvel1, ym))}},
      24);

  // 10/11. Donor-cell mass fluxes.
  add("advec_mass_x",
      {{mass_flux_x, ld(vol_flux_x, c) * (k(0.5) * (ld(density1, c) + ld(density1, xm)))}},
      28);
  add("advec_mass_y",
      {{mass_flux_y, ld(vol_flux_y, c) * (k(0.5) * (ld(density1, c) + ld(density1, ym)))}},
      28);

  // 12/13. Advection updates rewrite the step inputs (expandable arrays).
  add("advec_cell_density",
      {{density0, ld(density1, c) + k(0.01) * ((ld(mass_flux_x, c) - ld(mass_flux_x, xp)) +
                                               (ld(mass_flux_y, c) - ld(mass_flux_y, yp)))}},
      34);
  add("advec_cell_energy",
      {{energy0, ld(energy1, c) + k(0.01) * ((ld(mass_flux_x, c) - ld(mass_flux_x, xp)) *
                                                 ld(energy1, xm) +
                                             (ld(mass_flux_y, c) - ld(mass_flux_y, yp)) *
                                                 ld(energy1, ym))}},
      38);

  // 14. Velocity reset for the next step (also expandable rewrites).
  add("reset_field",
      {{xvel0, ld(xvel1, c)}, {yvel0, ld(yvel1, c)}}, 18);

  // 15/16. Start of the next step: pressure/soundspeed/viscosity get their
  // second write generation — genuine expandable read-write arrays.
  add("ideal_gas_next",
      {{pressure, k(0.4) * ld(density0, c) * ld(energy0, c)},
       {soundspeed, k(1.4) * (k(0.4) * ld(density0, c) * ld(energy0, c)) /
                        ld(density0, c)}},
      24);
  add("viscosity_next",
      {{viscosity,
        k(0.1) * ((ld(xvel0, xp) - ld(xvel0, c)) * (ld(xvel0, xp) - ld(xvel0, c)) +
                  (ld(yvel0, yp) - ld(yvel0, c)) * (ld(yvel0, yp) - ld(yvel0, c))) *
            (ld(pressure, c) + k(0.25) * (ld(pressure, xm) + ld(pressure, xp) +
                                          ld(pressure, ym) + ld(pressure, yp)))}},
      42);

  program.validate();
  return program;
}

}  // namespace kf
