#include "apps/synthetic.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace kf {
namespace {

/// Builds a WeightedSum-style expression over the chosen loads.
Expr body_expr(Rng& rng, const std::vector<std::pair<ArrayId, StencilPattern>>& reads) {
  Expr acc;
  bool first = true;
  for (const auto& [array, pattern] : reads) {
    for (const Offset& o : pattern.offsets()) {
      const double coef = 0.125 + 0.5 * rng.next_double();
      Expr term = Expr::constant(coef) * Expr::load(array, o);
      acc = first ? term : (rng.next_bool(0.1) ? Expr::max(acc, term) : acc + term);
      first = false;
    }
  }
  if (first) acc = Expr::constant(1.0);
  return acc;
}

}  // namespace

Program build_synthetic(const SyntheticSpec& spec) {
  KF_REQUIRE(spec.kernels >= 1, "need at least one kernel");
  KF_REQUIRE(spec.arrays >= 2, "need at least two arrays");
  KF_REQUIRE(spec.min_inputs >= 1 && spec.max_inputs >= spec.min_inputs,
             "bad input count range");

  Rng rng(spec.seed);
  Program program(spec.name, spec.grid, spec.launch);

  for (int a = 0; a < spec.arrays; ++a) {
    program.add_array(strprintf("arr_%03d", a));
  }

  // Array bookkeeping.
  std::vector<ArrayId> untouched;
  for (ArrayId a = 0; a < spec.arrays; ++a) untouched.push_back(a);
  rng.shuffle(untouched);
  std::vector<ArrayId> touched;          // any prior use
  std::vector<ArrayId> recent_writes;    // RAW sources, newest last
  std::vector<ArrayId> written_once;     // candidates for expandable rewrites
  int expandable_budget = spec.expandable;

  auto draw_fresh = [&]() -> ArrayId {
    if (untouched.empty()) return kInvalidArray;
    const ArrayId a = untouched.back();
    untouched.pop_back();
    touched.push_back(a);
    return a;
  };
  auto note_touch = [&](ArrayId a) {
    if (std::find(touched.begin(), touched.end(), a) == touched.end()) {
      touched.push_back(a);
    }
  };

  KF_REQUIRE(spec.phases >= 1, "need at least one phase");
  for (int ki = 0; ki < spec.kernels; ++ki) {
    KernelInfo kernel;
    kernel.name = strprintf("k_%03d", ki);
    kernel.phase = ki * spec.phases / spec.kernels;

    // ---- inputs ----
    const int num_inputs =
        static_cast<int>(rng.next_int(spec.min_inputs, spec.max_inputs));
    std::set<ArrayId> used;
    std::vector<std::pair<ArrayId, StencilPattern>> reads;
    for (int i = 0; i < num_inputs; ++i) {
      ArrayId a = kInvalidArray;
      if (!recent_writes.empty() && rng.next_bool(spec.producer_bias)) {
        const std::size_t window =
            std::min<std::size_t>(recent_writes.size(),
                                  static_cast<std::size_t>(spec.producer_window));
        a = recent_writes[recent_writes.size() - 1 - rng.next_below(window)];
      } else if (!touched.empty() && rng.next_bool(spec.reuse_bias)) {
        a = touched[rng.next_below(touched.size())];
      } else {
        a = draw_fresh();
        if (a == kInvalidArray && !touched.empty()) {
          a = touched[rng.next_below(touched.size())];
        }
      }
      if (a == kInvalidArray || used.contains(a)) continue;
      used.insert(a);
      note_touch(a);
      StencilPattern pattern =
          rng.next_bool(spec.center_read_fraction)
              ? StencilPattern::point()
              : StencilPattern::with_thread_load(
                    std::max<int>(2, spec.thread_load +
                                         static_cast<int>(rng.next_int(-1, 1))));
      reads.emplace_back(a, std::move(pattern));
    }
    if (reads.empty()) {
      // Guarantee at least one input.
      ArrayId a = touched.empty() ? draw_fresh() : touched[rng.next_below(touched.size())];
      KF_CHECK(a != kInvalidArray, "array pool exhausted with nothing touched");
      used.insert(a);
      note_touch(a);
      reads.emplace_back(a, StencilPattern::with_thread_load(spec.thread_load));
    }

    // ---- output ----
    ArrayId out = kInvalidArray;
    const bool try_expandable = expandable_budget > 0 && !written_once.empty() &&
                                rng.next_bool(0.25);
    if (try_expandable) {
      // Rewrite a previously written array -> expandable read-write class.
      for (int attempt = 0; attempt < 4 && out == kInvalidArray; ++attempt) {
        const ArrayId candidate = written_once[rng.next_below(written_once.size())];
        if (!used.contains(candidate)) out = candidate;
      }
      if (out != kInvalidArray) --expandable_budget;
    }
    bool accumulate = false;
    if (out == kInvalidArray) out = draw_fresh();
    if (out == kInvalidArray) {
      // Pool exhausted: accumulate into a touched array. A read-modify-
      // write depends on the previous contents, so it cannot be relaxed by
      // array expansion — exactly how a small array budget tightens the
      // order of execution (the paper's Fig. 9 low-array-count effect).
      for (int attempt = 0; attempt < 16 && out == kInvalidArray; ++attempt) {
        const ArrayId candidate = touched[rng.next_below(touched.size())];
        if (!used.contains(candidate)) out = candidate;
      }
      KF_CHECK(out != kInvalidArray, "could not pick an output array");
      accumulate = rng.next_bool(spec.rewrite_accumulate_prob);
    }
    note_touch(out);
    recent_writes.push_back(out);
    if (std::find(written_once.begin(), written_once.end(), out) ==
        written_once.end()) {
      written_once.push_back(out);
    }

    // ---- metadata ----
    int load_points = 0;
    for (const auto& [array, pattern] : reads) {
      ArrayAccess acc;
      acc.array = array;
      acc.mode = AccessMode::Read;
      acc.pattern = pattern;
      acc.flops = 2.0 * pattern.size();
      kernel.accesses.push_back(std::move(acc));
      load_points += pattern.size();
    }
    {
      ArrayAccess acc;
      acc.array = out;
      acc.mode = accumulate ? AccessMode::ReadWrite : AccessMode::Write;
      acc.pattern = StencilPattern::point();
      acc.flops = accumulate ? 2.0 : 1.0;
      kernel.accesses.push_back(std::move(acc));
    }
    kernel.flops_per_site = 2.0 * load_points + 1.0;
    kernel.regs_per_thread = std::min(
        180, spec.regs_base + spec.regs_per_load * load_points +
                 static_cast<int>(rng.next_int(0, 6)));
    kernel.addr_regs = 8 + static_cast<int>(rng.next_int(0, 4));

    // ---- body ----
    if (spec.with_bodies) {
      StencilStatement stmt;
      stmt.out = out;
      stmt.expr = accumulate
                      ? Expr::constant(0.5) * Expr::load(out) + body_expr(rng, reads)
                      : body_expr(rng, reads);
      kernel.body.push_back(std::move(stmt));
      kernel.derive_metadata_from_body();
      // derive_metadata_from_body resets regs/flops context; re-apply the
      // register model (flops_per_site now reflects the actual expression).
      kernel.regs_per_thread = std::min(
          180, spec.regs_base + spec.regs_per_load * load_points +
                   static_cast<int>(rng.next_int(0, 6)));
    }

    program.add_kernel(std::move(kernel));
  }

  program.validate();
  return program;
}

}  // namespace kf
