// PlanStore — crash-safe persistent store of known-good fusion plans.
//
// The ROADMAP's plan-service direction makes search the cache-miss path:
// a plan found once for a (program, device) pair is persisted and replayed
// in microseconds on every later request (MIOpen's find-db lifecycle,
// SNIPPETS.md §1–2). That only works if the store survives everything a
// serving box does to it: SIGKILL mid-commit, torn writes, bit-rot, full
// disks. The durability design:
//
//   * Append-only CRC-framed journal. Every mutation is one framed text
//     line — `kfs1 <crc32> <len> <payload>\n` — where the CRC and length
//     cover the payload, so truncation (torn tail) and corruption (bit-rot)
//     are both detectable per record. Payloads carry a versioned record
//     schema (`put …` / `del …`). A commit is append → fflush → fsync.
//   * Compacted snapshots. `compact()` serializes the live index, commits
//     it with write → fsync → atomic-rename (util/fs_io.hpp), then resets
//     the journal — a crash at any point leaves either the old
//     snapshot+journal or the new ones, never a mix.
//   * Explicit recovery. Opening a store scans snapshot then journal,
//     validates every frame (magic, length, CRC) and every payload (field
//     ranges, finite costs, and that the plan text parses as a legal
//     partition of its kernel count), salvages all valid records, and
//     quarantines bad ones — a telemetry event and a counter, never a
//     crash, and never a corrupt plan in the index. Only the in-flight
//     record of a mid-commit crash can be lost (the torn tail).
//
// Crash-torture support: test_tear_next_append(n) makes the next commit
// write exactly its first n bytes and then fail with the store wedged —
// the on-disk image of a SIGKILL after n durable bytes. The fault injector
// (site `store`) tears commits probabilistically the same way, but repairs
// the line ending so a *surviving* process keeps appending parseable
// records; either way the record is not applied to the index.
//
// Thread-safe, read-mostly: a shared_mutex over index + journal. Reads
// (get / plans_for_program / size / stats — the serving hot path, many
// workers at once) take the lock shared and return value snapshots;
// mutations (put / erase / compact — the write-back path) take it exclusive,
// so the journal has exactly one appender at a time and the append→fsync→
// index-update commit protocol stays atomic under concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/fs_io.hpp"

namespace kf {

struct Telemetry;  // telemetry/telemetry.hpp

/// (program fingerprint, device fingerprint) — see store/fingerprint.hpp.
struct PlanKey {
  std::uint64_t program_fp = 0;
  std::uint64_t device_fp = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// One persisted plan. `plan_text` is the FusionPlan::to_string form and is
/// re-validated (parse + partition) on every load; costs are advisory
/// (the serving layer re-costs against its own objective).
struct StoredPlan {
  PlanKey key;
  int num_kernels = 0;
  std::string plan_text;
  double best_cost_s = 0.0;
  double baseline_cost_s = 0.0;
  std::uint64_t revision = 0;  ///< store-assigned, monotone; 0 = unassigned
};

/// What recovery found. `salvaged` counts valid records recovered *after*
/// the first corrupt one — records a frameless format would have lost.
struct StoreRecovery {
  std::size_t snapshot_records = 0;  ///< valid records applied from the snapshot
  std::size_t journal_records = 0;   ///< valid records applied from the journal
  std::size_t quarantined = 0;       ///< corrupt records skipped (bad frame/CRC/payload)
  std::size_t salvaged = 0;          ///< valid records past the first corruption
  bool torn_tail = false;            ///< truncated in-flight final record dropped
  bool snapshot_header_bad = false;  ///< snapshot missing/garbled header or end-count

  bool clean() const noexcept {
    return quarantined == 0 && !torn_tail && !snapshot_header_bad;
  }
};

class PlanStore {
 public:
  struct Config {
    std::string dir;
    /// fsync every commit (and snapshot). Turn off only for tests/benches.
    bool durable = true;
    std::size_t max_record_bytes = 1u << 20;
    /// Observability: recovery/quarantine events, store.* counters. May be
    /// null. Must outlive the store.
    const Telemetry* telemetry = nullptr;
  };

  static constexpr const char* kJournalFile = "journal.kfj";
  static constexpr const char* kSnapshotFile = "snapshot.kfs";

  /// Opens (creating the directory if needed) and recovers. Throws
  /// StoreError only on hard I/O failures — corrupt contents are salvaged
  /// and reported via recovery(), never thrown.
  explicit PlanStore(Config config);

  const StoreRecovery& recovery() const noexcept { return recovery_; }

  std::optional<StoredPlan> get(const PlanKey& key) const;

  /// Every stored plan for this program fingerprint (any device), revision
  /// order — the degradation ladder's "nearest stored plan" rung.
  std::vector<StoredPlan> plans_for_program(std::uint64_t program_fp) const;

  /// Commits one plan: journal append + fsync, then index update. Assigns
  /// the revision. Throws StoreError on I/O failure or a (possibly
  /// injected) torn write — the record is then NOT in the index, matching
  /// the disk image a recovery would produce.
  void put(StoredPlan plan);

  /// Commits a tombstone; true if the key was present.
  bool erase(const PlanKey& key);

  std::size_t size() const;

  /// Snapshot + journal reset (see class comment). Throws StoreError on
  /// I/O failure; the store remains consistent either way.
  void compact();

  struct Stats {
    std::size_t plans = 0;
    std::size_t journal_records = 0;  ///< records appended since last compact
    long journal_bytes = 0;
    long snapshot_bytes = 0;
    long puts = 0;
    long gets = 0;
    long hits = 0;
    long write_faults = 0;  ///< torn/injected append failures survived
    long compactions = 0;
    StoreRecovery recovery;
  };
  Stats stats() const;

  /// Read-only offline scan of a store directory (kfc store verify): same
  /// validation as recovery, no repair, no index. Throws StoreError only on
  /// hard I/O failures.
  static StoreRecovery verify(const std::string& dir,
                              std::size_t max_record_bytes = 1u << 20);

  /// Crash simulation (tests only): the next put() writes exactly `bytes`
  /// bytes of its framed record, then throws with the store wedged —
  /// every further mutation throws, as after a real crash. Reopen to
  /// recover.
  void test_tear_next_append(long bytes) noexcept { tear_next_ = bytes; }

  bool wedged() const noexcept { return wedged_; }

  const std::string& dir() const noexcept { return config_.dir; }

 private:
  Config config_;
  mutable std::shared_mutex mu_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, StoredPlan> index_;
  AppendFile journal_;
  StoreRecovery recovery_;
  std::uint64_t next_revision_ = 1;
  std::size_t journal_records_ = 0;
  // Atomic so the unlocked test hook / accessor race cleanly with writers.
  std::atomic<long> tear_next_{-1};
  std::atomic<bool> wedged_{false};
  mutable std::atomic<long> puts_{0};
  mutable std::atomic<long> gets_{0};
  mutable std::atomic<long> hits_{0};
  mutable std::atomic<long> write_faults_{0};
  long compactions_ = 0;

  std::string journal_path() const { return config_.dir + "/" + kJournalFile; }
  std::string snapshot_path() const { return config_.dir + "/" + kSnapshotFile; }

  void recover();
  void append_record(const std::string& payload, std::uint64_t fault_draw_key);
  void emit_recovery_telemetry() const;
};

}  // namespace kf
