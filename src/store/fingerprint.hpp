// Structural fingerprints for plan-store keys.
//
// A stored plan is only replayable against a (program, device) pair whose
// search-relevant structure matches the one it was found for, so the store
// keys on two 64-bit fingerprints:
//
//   * program_fingerprint — a walk over everything the legality checker and
//     the cost models read: grid and launch configuration, per-array element
//     width / read-only-cache eligibility, and per-kernel Table III metadata
//     plus the full access list (array, mode, flops, every stencil offset,
//     phases). Program and array *names* are deliberately excluded:
//     structurally identical programs share plans.
//   * device_fingerprint — every numeric field of DeviceSpec (name again
//     excluded): any constant that changes the simulator or the projection
//     model changes the fingerprint, so a plan tuned for one device variant
//     is never silently replayed on another.
//
// Both reuse the allocation-free avalanche mix (util/rng.hpp mix64) the
// evaluation engine's group fingerprints are built from: each field is
// mixed into a running 64-bit state in a fixed order, giving the same
// 2^-64 birthday-bound collision behaviour without hashing a serialized
// text form.
#pragma once

#include <cstdint>

#include "gpu/device_spec.hpp"
#include "ir/program.hpp"

namespace kf {

std::uint64_t program_fingerprint(const Program& program) noexcept;
std::uint64_t device_fingerprint(const DeviceSpec& device) noexcept;

}  // namespace kf
