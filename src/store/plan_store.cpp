#include "store/plan_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "fusion/fusion_plan.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace kf {
namespace {

constexpr std::string_view kFrameMagic = "kfs1";
constexpr int kMaxStoreKernels = 1 << 20;

/// `kfs1 <crc32-8hex> <len> <payload>\n` — crc and len cover the payload.
std::string frame_record(std::string_view payload) {
  return strprintf("%s %08x %zu ", std::string(kFrameMagic).c_str(),
                   crc32(payload), payload.size()) +
         std::string(payload) + "\n";
}

std::string put_payload(const StoredPlan& plan) {
  return strprintf("put pfp=%016llx dfp=%016llx kernels=%d rev=%llu cost=%a "
                   "baseline=%a plan=",
                   static_cast<unsigned long long>(plan.key.program_fp),
                   static_cast<unsigned long long>(plan.key.device_fp),
                   plan.num_kernels,
                   static_cast<unsigned long long>(plan.revision),
                   plan.best_cost_s, plan.baseline_cost_s) +
         plan.plan_text;
}

std::string del_payload(const PlanKey& key, std::uint64_t revision) {
  return strprintf("del pfp=%016llx dfp=%016llx rev=%llu",
                   static_cast<unsigned long long>(key.program_fp),
                   static_cast<unsigned long long>(key.device_fp),
                   static_cast<unsigned long long>(revision));
}

bool parse_u64_field(std::string_view token, std::string_view name,
                     std::uint64_t* out, int base = 16) {
  if (!starts_with(token, name) || token.size() <= name.size() ||
      token[name.size()] != '=') {
    return false;
  }
  const std::string value(token.substr(name.size() + 1));
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, base);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_hexfloat_field(std::string_view token, std::string_view name,
                          double* out) {
  if (!starts_with(token, name) || token.size() <= name.size() ||
      token[name.size()] != '=') {
    return false;
  }
  const std::string value(token.substr(name.size() + 1));
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

struct ParsedRecord {
  enum class Kind { Put, Del, SnapshotHeader, End };
  Kind kind = Kind::Put;
  StoredPlan plan;           // Put
  PlanKey key;               // Del
  std::uint64_t revision = 0;
  std::size_t end_count = 0;  // End
};

/// Validates one payload in full — field syntax, ranges, finite costs, and
/// (for puts) that the plan text parses as a partition of `kernels`. False
/// means the record must be quarantined.
bool parse_payload(std::string_view payload, ParsedRecord* out) {
  if (payload == "snapshot v1") {
    out->kind = ParsedRecord::Kind::SnapshotHeader;
    return true;
  }
  if (starts_with(payload, "end ")) {
    std::uint64_t count = 0;
    if (!parse_u64_field(trim(payload.substr(4)), "count", &count, 10)) return false;
    out->kind = ParsedRecord::Kind::End;
    out->end_count = static_cast<std::size_t>(count);
    return true;
  }
  if (starts_with(payload, "del ")) {
    const std::vector<std::string> tokens = split(std::string(payload), ' ');
    if (tokens.size() != 4) return false;
    std::uint64_t rev = 0;
    if (!parse_u64_field(tokens[1], "pfp", &out->key.program_fp) ||
        !parse_u64_field(tokens[2], "dfp", &out->key.device_fp) ||
        !parse_u64_field(tokens[3], "rev", &rev, 10)) {
      return false;
    }
    out->kind = ParsedRecord::Kind::Del;
    out->revision = rev;
    return true;
  }
  if (!starts_with(payload, "put ")) return false;
  const std::size_t plan_pos = payload.find(" plan=");
  if (plan_pos == std::string_view::npos) return false;
  const std::vector<std::string> tokens =
      split(std::string(payload.substr(4, plan_pos - 4)), ' ');
  if (tokens.size() != 6) return false;
  StoredPlan& plan = out->plan;
  std::uint64_t kernels = 0;
  if (!parse_u64_field(tokens[0], "pfp", &plan.key.program_fp) ||
      !parse_u64_field(tokens[1], "dfp", &plan.key.device_fp) ||
      !parse_u64_field(tokens[2], "kernels", &kernels, 10) ||
      !parse_u64_field(tokens[3], "rev", &plan.revision, 10) ||
      !parse_hexfloat_field(tokens[4], "cost", &plan.best_cost_s) ||
      !parse_hexfloat_field(tokens[5], "baseline", &plan.baseline_cost_s)) {
    return false;
  }
  if (kernels == 0 || kernels > kMaxStoreKernels) return false;
  if (plan.best_cost_s < 0.0 || plan.baseline_cost_s < 0.0) return false;
  plan.num_kernels = static_cast<int>(kernels);
  plan.plan_text = std::string(payload.substr(plan_pos + 6));
  // The load-bearing validation: a stored plan must round-trip through the
  // partition parser before it can ever reach the index. Bit-rot inside the
  // plan text quarantines the record here.
  try {
    (void)FusionPlan::parse(plan.num_kernels, plan.plan_text);
  } catch (const std::exception&) {
    return false;
  }
  out->kind = ParsedRecord::Kind::Put;
  return true;
}

struct ScanResult {
  std::vector<ParsedRecord> records;
  std::size_t quarantined = 0;
  std::size_t salvaged = 0;
  bool torn_tail = false;
};

/// Validates one framed line (without its '\n'). False → corrupt frame.
bool parse_frame(std::string_view line, ParsedRecord* out) {
  if (!starts_with(line, kFrameMagic) || line.size() < kFrameMagic.size() + 1 ||
      line[kFrameMagic.size()] != ' ') {
    return false;
  }
  std::string_view rest = line.substr(kFrameMagic.size() + 1);
  const std::size_t sp1 = rest.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = rest.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  const std::string crc_text(rest.substr(0, sp1));
  const std::string len_text(rest.substr(sp1 + 1, sp2 - sp1 - 1));
  char* end = nullptr;
  errno = 0;
  const unsigned long crc_claim = std::strtoul(crc_text.c_str(), &end, 16);
  if (end == crc_text.c_str() || *end != '\0' || errno == ERANGE ||
      crc_text.size() != 8) {
    return false;
  }
  errno = 0;
  const unsigned long len_claim = std::strtoul(len_text.c_str(), &end, 10);
  if (end == len_text.c_str() || *end != '\0' || errno == ERANGE) return false;
  const std::string_view payload = rest.substr(sp2 + 1);
  if (payload.size() != len_claim) return false;
  if (crc32(payload) != static_cast<std::uint32_t>(crc_claim)) return false;
  return parse_payload(payload, out);
}

/// Scans one store file: splits on '\n', validates every frame, counts
/// quarantine/salvage, flags a torn tail. Never throws on content.
ScanResult scan_file(std::string_view content) {
  ScanResult result;
  bool seen_bad = false;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const bool is_tail = nl == std::string_view::npos;
    const std::string_view line =
        is_tail ? content.substr(pos) : content.substr(pos, nl - pos);
    pos = is_tail ? content.size() : nl + 1;
    if (trim(line).empty()) continue;
    ParsedRecord record;
    if (parse_frame(line, &record)) {
      // A complete final record missing only its '\n' is a committed record:
      // the CRC proves every payload byte landed.
      if (seen_bad) ++result.salvaged;
      result.records.push_back(std::move(record));
    } else if (is_tail) {
      // Truncated in-flight record: the one commit a crash may lose.
      result.torn_tail = true;
    } else {
      // Bit-rot / torn-then-continued line mid-file: quarantine and keep
      // scanning — later records still self-validate.
      ++result.quarantined;
      seen_bad = true;
    }
  }
  return result;
}

}  // namespace

PlanStore::PlanStore(Config config) : config_(std::move(config)) {
  KF_REQUIRE(!config_.dir.empty(), "plan store needs a directory");
  make_dir(config_.dir);
  recover();
}

void PlanStore::recover() {
  // Snapshot first (base image), then journal (replay) — matching the
  // compaction ordering: snapshot commit precedes journal reset.
  if (file_exists(snapshot_path())) {
    const ScanResult scan =
        scan_file(read_file(snapshot_path(), config_.max_record_bytes * 64));
    recovery_.quarantined += scan.quarantined;
    recovery_.salvaged += scan.salvaged;
    recovery_.torn_tail |= scan.torn_tail;  // snapshot bit-rot truncation
    bool saw_header = false;
    std::size_t applied = 0;
    std::size_t end_count = 0;
    bool saw_end = false;
    for (const ParsedRecord& record : scan.records) {
      switch (record.kind) {
        case ParsedRecord::Kind::SnapshotHeader: saw_header = true; break;
        case ParsedRecord::Kind::End:
          saw_end = true;
          end_count = record.end_count;
          break;
        case ParsedRecord::Kind::Put:
          index_[{record.plan.key.program_fp, record.plan.key.device_fp}] =
              record.plan;
          next_revision_ = std::max(next_revision_, record.plan.revision + 1);
          ++applied;
          break;
        case ParsedRecord::Kind::Del:
          index_.erase({record.key.program_fp, record.key.device_fp});
          next_revision_ = std::max(next_revision_, record.revision + 1);
          ++applied;
          break;
      }
    }
    recovery_.snapshot_records = applied;
    if (!saw_header || !saw_end || end_count != applied) {
      recovery_.snapshot_header_bad = true;
    }
  }
  if (file_exists(journal_path())) {
    const ScanResult scan =
        scan_file(read_file(journal_path(), config_.max_record_bytes * 1024));
    recovery_.quarantined += scan.quarantined;
    recovery_.salvaged += scan.salvaged;
    recovery_.torn_tail |= scan.torn_tail;
    for (const ParsedRecord& record : scan.records) {
      switch (record.kind) {
        case ParsedRecord::Kind::Put:
          index_[{record.plan.key.program_fp, record.plan.key.device_fp}] =
              record.plan;
          next_revision_ = std::max(next_revision_, record.plan.revision + 1);
          ++recovery_.journal_records;
          break;
        case ParsedRecord::Kind::Del:
          index_.erase({record.key.program_fp, record.key.device_fp});
          next_revision_ = std::max(next_revision_, record.revision + 1);
          ++recovery_.journal_records;
          break;
        default:
          ++recovery_.quarantined;  // snapshot framing inside a journal
          break;
      }
    }
    journal_records_ = recovery_.journal_records;
  }
  emit_recovery_telemetry();
}

void PlanStore::emit_recovery_telemetry() const {
  const Telemetry* t = config_.telemetry;
  if (t == nullptr) return;
  if (t->metrics != nullptr) {
    t->metrics->count("store.recovered_records",
                      static_cast<long>(recovery_.snapshot_records +
                                        recovery_.journal_records));
    if (recovery_.salvaged > 0) {
      t->metrics->count("store.salvaged_records",
                        static_cast<long>(recovery_.salvaged));
    }
    if (recovery_.quarantined > 0) {
      t->metrics->count("store.quarantined_records",
                        static_cast<long>(recovery_.quarantined));
    }
    if (recovery_.torn_tail) t->metrics->count("store.torn_tails");
  }
  if (t->wants_trace()) {
    t->trace->emit("store_recovery", [&](TraceEvent& e) {
      e.str("dir", config_.dir)
          .num("snapshot_records", static_cast<long>(recovery_.snapshot_records))
          .num("journal_records", static_cast<long>(recovery_.journal_records))
          .num("quarantined", static_cast<long>(recovery_.quarantined))
          .num("salvaged", static_cast<long>(recovery_.salvaged))
          .boolean("torn_tail", recovery_.torn_tail)
          .boolean("snapshot_header_bad", recovery_.snapshot_header_bad);
    });
  }
}

std::optional<StoredPlan> PlanStore::get(const PlanKey& key) const {
  // Snapshot-read fast path: concurrent serving workers share the lock.
  std::shared_lock<std::shared_mutex> lock(mu_);
  gets_.fetch_add(1, std::memory_order_relaxed);
  const auto it = index_.find({key.program_fp, key.device_fp});
  if (it == index_.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::vector<StoredPlan> PlanStore::plans_for_program(
    std::uint64_t program_fp) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<StoredPlan> out;
  for (auto it = index_.lower_bound({program_fp, 0});
       it != index_.end() && it->first.first == program_fp; ++it) {
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end(),
            [](const StoredPlan& a, const StoredPlan& b) {
              return a.revision < b.revision;
            });
  return out;
}

void PlanStore::append_record(const std::string& payload,
                              std::uint64_t fault_draw_key) {
  // Caller holds mu_.
  if (wedged_) {
    throw StoreError("plan store is wedged after a torn write; reopen to recover");
  }
  if (payload.size() > config_.max_record_bytes) {
    throw StoreError(strprintf("record of %zu bytes exceeds the %zu-byte limit",
                               payload.size(), config_.max_record_bytes));
  }
  const std::string frame = frame_record(payload);
  long tear = tear_next_.exchange(-1, std::memory_order_relaxed);
  bool injected = false;
  if (tear < 0 &&
      FaultInjector::instance().should_inject(FaultSite::Store, fault_draw_key)) {
    tear = static_cast<long>(frame.size() / 2);
    injected = true;
  }
  if (!journal_.is_open()) journal_.open(journal_path());
  try {
    journal_.append(frame, tear);
  } catch (const StoreError&) {
    write_faults_.fetch_add(1, std::memory_order_relaxed);
    if (!injected) {
      // Test-hook tear: simulate process death — no repair, everything
      // after this throws until the store is reopened.
      wedged_ = true;
      throw;
    }
    // Injected tear with a surviving process: terminate the garbage line so
    // later commits stay parseable, then report the failed commit.
    try {
      journal_.append("\n");
      if (config_.durable) journal_.sync();
    } catch (const StoreError&) {
      wedged_ = true;  // the repair write failed too: genuine I/O trouble
    }
    const Telemetry* t = config_.telemetry;
    if (t != nullptr && t->metrics != nullptr) t->metrics->count("store.write_faults");
    if (t != nullptr && t->wants_trace()) {
      t->trace->emit("store_write_fault", [&](TraceEvent& e) {
        e.num("bytes", frame.size()).boolean("injected", injected);
      });
    }
    throw;
  }
  if (config_.durable) journal_.sync();
  ++journal_records_;
  // Journal telemetry: emitted while a request trace is active (serve
  // write-back), the line carries the owning trace id, tying store I/O into
  // the request's causal trace.
  const Telemetry* t = config_.telemetry;
  if (t != nullptr && t->wants_trace()) {
    t->trace->emit("store_commit", [&](TraceEvent& e) {
      e.num("bytes", frame.size()).num("journal_records", journal_records_);
    });
  }
}

void PlanStore::put(StoredPlan plan) {
  KF_REQUIRE(plan.num_kernels > 0 && plan.num_kernels <= kMaxStoreKernels,
             "stored plan has a bad kernel count " << plan.num_kernels);
  KF_REQUIRE(std::isfinite(plan.best_cost_s) && plan.best_cost_s >= 0.0 &&
                 std::isfinite(plan.baseline_cost_s) && plan.baseline_cost_s >= 0.0,
             "stored plan costs must be finite and non-negative");
  // Normalize + validate the plan text once, before it can reach disk.
  FusionPlan parsed = FusionPlan::parse(plan.num_kernels, plan.plan_text);
  parsed.canonicalize();
  plan.plan_text = parsed.to_string();

  // Single-writer journal append: exclusive over index + journal.
  std::unique_lock<std::shared_mutex> lock(mu_);
  plan.revision = next_revision_;
  const std::uint64_t draw_key =
      mix64(plan.key.program_fp ^ mix64(plan.key.device_fp) ^ plan.revision);
  append_record(put_payload(plan), draw_key);
  ++next_revision_;
  index_[{plan.key.program_fp, plan.key.device_fp}] = std::move(plan);
  puts_.fetch_add(1, std::memory_order_relaxed);
}

bool PlanStore::erase(const PlanKey& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = index_.find({key.program_fp, key.device_fp});
  if (it == index_.end()) return false;
  const std::uint64_t revision = next_revision_;
  const std::uint64_t draw_key =
      mix64(key.program_fp ^ mix64(key.device_fp) ^ revision);
  append_record(del_payload(key, revision), draw_key);
  ++next_revision_;
  index_.erase(it);
  return true;
}

std::size_t PlanStore::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return index_.size();
}

void PlanStore::compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (wedged_) {
    throw StoreError("plan store is wedged after a torn write; reopen to recover");
  }
  std::string snapshot = frame_record("snapshot v1");
  for (const auto& [key, plan] : index_) snapshot += frame_record(put_payload(plan));
  snapshot += frame_record(strprintf("end count=%zu", index_.size()));
  // Ordering is the crash-safety argument: the snapshot is durable (write →
  // fsync → rename → dir fsync) before the journal resets, so a crash
  // between the two replays the old journal over the new snapshot — puts
  // are idempotent and revisions monotone, so that is merely redundant.
  write_file_atomic(snapshot_path(), snapshot, config_.durable);
  journal_.close();
  write_file_atomic(journal_path(), "", config_.durable);
  journal_records_ = 0;
  ++compactions_;
  const Telemetry* t = config_.telemetry;
  if (t != nullptr && t->metrics != nullptr) t->metrics->count("store.compactions");
}

PlanStore::Stats PlanStore::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats s;
  s.plans = index_.size();
  s.journal_records = journal_records_;
  s.journal_bytes = std::max(0L, file_size(journal_path()));
  s.snapshot_bytes = std::max(0L, file_size(snapshot_path()));
  s.puts = puts_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.write_faults = write_faults_.load(std::memory_order_relaxed);
  s.compactions = compactions_;
  s.recovery = recovery_;
  return s;
}

StoreRecovery PlanStore::verify(const std::string& dir,
                                std::size_t max_record_bytes) {
  StoreRecovery report;
  const std::string snapshot = dir + "/" + kSnapshotFile;
  const std::string journal = dir + "/" + kJournalFile;
  if (file_exists(snapshot)) {
    const ScanResult scan = scan_file(read_file(snapshot, max_record_bytes * 64));
    report.quarantined += scan.quarantined;
    report.salvaged += scan.salvaged;
    report.torn_tail |= scan.torn_tail;
    bool saw_header = false;
    bool saw_end = false;
    std::size_t end_count = 0;
    for (const ParsedRecord& record : scan.records) {
      if (record.kind == ParsedRecord::Kind::SnapshotHeader) saw_header = true;
      else if (record.kind == ParsedRecord::Kind::End) {
        saw_end = true;
        end_count = record.end_count;
      } else {
        ++report.snapshot_records;
      }
    }
    if (!saw_header || !saw_end || end_count != report.snapshot_records) {
      report.snapshot_header_bad = true;
    }
  }
  if (file_exists(journal)) {
    const ScanResult scan = scan_file(read_file(journal, max_record_bytes * 1024));
    report.quarantined += scan.quarantined;
    report.salvaged += scan.salvaged;
    report.torn_tail |= scan.torn_tail;
    for (const ParsedRecord& record : scan.records) {
      if (record.kind == ParsedRecord::Kind::Put ||
          record.kind == ParsedRecord::Kind::Del) {
        ++report.journal_records;
      } else {
        ++report.quarantined;
      }
    }
  }
  return report;
}

}  // namespace kf
