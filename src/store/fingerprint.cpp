#include "store/fingerprint.hpp"

#include <bit>

#include "util/rng.hpp"

namespace kf {
namespace {

/// Order-sensitive running mix: every field contributes 64 fully-mixed bits.
class Mixer {
 public:
  explicit Mixer(std::uint64_t salt) noexcept : state_(mix64(salt)) {}

  void add(std::uint64_t v) noexcept { state_ = mix64(state_ ^ mix64(v + 0x9e3779b97f4a7c15ULL)); }
  void add(long v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(int v) noexcept { add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
  void add(bool v) noexcept { add(static_cast<std::uint64_t>(v ? 1 : 2)); }
  void add(double v) noexcept {
    // +0.0 and -0.0 compare equal but differ bitwise; normalize so
    // structurally equal specs fingerprint identically.
    if (v == 0.0) v = 0.0;
    add(std::bit_cast<std::uint64_t>(v));
  }

  std::uint64_t finish() const noexcept { return mix64(state_); }

 private:
  std::uint64_t state_;
};

}  // namespace

std::uint64_t program_fingerprint(const Program& program) noexcept {
  Mixer m(0x706c616e2d6b6579ULL);  // "plan-key"
  m.add(program.grid().nx);
  m.add(program.grid().ny);
  m.add(program.grid().nz);
  m.add(program.launch().block_x);
  m.add(program.launch().block_y);
  m.add(program.num_arrays());
  for (const ArrayInfo& a : program.arrays()) {
    m.add(a.elem_bytes);
    m.add(a.readonly_cache_eligible);
  }
  m.add(program.num_kernels());
  for (const KernelInfo& k : program.kernels()) {
    m.add(k.regs_per_thread);
    m.add(k.addr_regs);
    m.add(k.active_threads);
    m.add(k.phase);
    m.add(k.flops_per_site);
    m.add(k.smem_in_original);
    m.add(static_cast<std::uint64_t>(k.accesses.size()));
    for (const ArrayAccess& acc : k.accesses) {
      m.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(acc.array)));
      m.add(static_cast<int>(acc.mode));
      m.add(acc.flops);
      m.add(acc.reads_own_product);
      m.add(static_cast<std::uint64_t>(acc.pattern.offsets().size()));
      for (const Offset& o : acc.pattern.offsets()) {
        m.add(o.dx);
        m.add(o.dy);
        m.add(o.dz);
      }
    }
  }
  return m.finish();
}

std::uint64_t device_fingerprint(const DeviceSpec& d) noexcept {
  Mixer m(0x6465762d6b657931ULL);  // "dev-key1"
  m.add(d.num_smx);
  m.add(d.regs_per_smx);
  m.add(d.smem_per_smx);
  m.add(d.max_regs_per_thread);
  m.add(d.peak_gflops);
  m.add(d.gmem_bw_gbs);
  m.add(d.max_blocks_per_smx);
  m.add(d.readonly_cache_per_smx);
  m.add(d.max_threads_per_smx);
  m.add(d.max_threads_per_block);
  m.add(d.warp_size);
  m.add(d.smem_banks);
  m.add(d.bank_width_bytes);
  m.add(d.reg_alloc_granularity);
  m.add(d.clock_ghz);
  m.add(d.gmem_latency_cycles);
  m.add(d.mlp_per_warp);
  m.add(d.l2_hit_fraction);
  m.add(d.barrier_cycles);
  m.add(d.launch_overhead_s);
  m.add(d.reg_reuse_factor);
  m.add(d.smem_overlap_penalty);
  m.add(d.regs_spill_to_l2);
  m.add(d.spill_penalty);
  return m.finish();
}

}  // namespace kf
