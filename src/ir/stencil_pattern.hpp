// Stencil access patterns.
//
// A pattern is the set of relative grid offsets a kernel dereferences when
// it touches an array at site (i, j, k). The pattern determines
//  * the "thread load" of the access (paper Table III, ThrLD): the average
//    number of threads in a thread block that read the same element — for a
//    uniform stencil this equals the number of distinct horizontal offsets;
//  * the halo radius needed when the array is staged in shared memory.
// Vertical (k) offsets do not contribute to thread load or halos because
// the kernels march over k inside each thread (the paper's kernels loop over
// nz sequentially, cf. Fig. 3 listings).
#pragma once

#include <string>
#include <vector>

namespace kf {

struct Offset {
  int dx = 0;
  int dy = 0;
  int dz = 0;

  friend bool operator==(const Offset&, const Offset&) = default;
  friend auto operator<=>(const Offset&, const Offset&) = default;
};

class StencilPattern {
 public:
  StencilPattern() = default;

  /// Deduplicates and sorts the offsets into canonical order.
  explicit StencilPattern(std::vector<Offset> offsets);

  /// The single-point pattern {(0,0,0)}.
  static StencilPattern point();

  /// 2D von-Neumann cross of given radius in the horizontal plane
  /// (e.g. radius 1 -> center + 4 face neighbours).
  static StencilPattern cross2d(int radius);

  /// Full (2r+1)^2 horizontal box.
  static StencilPattern box2d(int radius);

  /// Center plus `radius` points in -z and +z (vertical column stencil).
  static StencilPattern column(int radius);

  /// Backward-difference style pattern used throughout Fig. 3:
  /// {(0,0), (-1,0), (0,-1), (-1,-1)} truncated to `points` offsets.
  static StencilPattern backward2d(int points);

  /// Deterministic horizontal pattern with exactly `load` distinct (dx, dy)
  /// offsets: the center plus the nearest ring offsets in a fixed
  /// near-to-far order. Used by workload generators to hit a target thread
  /// load (Table V's attribute).
  static StencilPattern with_thread_load(int load);

  const std::vector<Offset>& offsets() const noexcept { return offsets_; }
  bool empty() const noexcept { return offsets_.empty(); }
  int size() const noexcept { return static_cast<int>(offsets_.size()); }

  /// Max horizontal Chebyshev radius: max(|dx|, |dy|) over offsets.
  int horizontal_radius() const noexcept;

  /// Max |dz| over offsets.
  int vertical_radius() const noexcept;

  /// Number of distinct (dx, dy) offsets — the paper's ThrLD for this
  /// access (each horizontal offset means one more thread in the block
  /// touches a given element).
  int thread_load() const noexcept;

  /// Union of two patterns.
  StencilPattern merged_with(const StencilPattern& other) const;

  bool contains(const Offset& o) const noexcept;

  std::string to_string() const;

  friend bool operator==(const StencilPattern&, const StencilPattern&) = default;

 private:
  std::vector<Offset> offsets_;
};

}  // namespace kf
