// kf::Program — the whole-program IR.
//
// A Program is an ordered sequence of kernel invocations over a set of data
// arrays, plus the grid/launch configuration shared by all kernels (the
// paper assumes identical launch configurations across original and fused
// kernels, §II-C). Kernel order is invocation order in the original host
// code; the dependency analysis derives everything else from it.
#pragma once

#include <string>
#include <vector>

#include "ir/ids.hpp"
#include "ir/kernel_info.hpp"

namespace kf {

/// Problem grid (one thread per (i, j) column; threads march over k).
struct GridDims {
  long nx = 256;
  long ny = 256;
  long nz = 64;

  long plane_sites() const noexcept { return nx * ny; }
  long total_sites() const noexcept { return nx * ny * nz; }
};

/// CUDA-style launch configuration in the horizontal plane.
struct LaunchConfig {
  int block_x = 32;
  int block_y = 4;

  int threads_per_block() const noexcept { return block_x * block_y; }  ///< Thr
};

class Program {
 public:
  Program() = default;
  Program(std::string name, GridDims grid, LaunchConfig launch = {});

  const std::string& name() const noexcept { return name_; }
  const GridDims& grid() const noexcept { return grid_; }
  const LaunchConfig& launch() const noexcept { return launch_; }
  void set_grid(const GridDims& grid) { grid_ = grid; }
  void set_launch(const LaunchConfig& launch);

  ArrayId add_array(ArrayInfo info);
  ArrayId add_array(std::string name, int elem_bytes = 8);
  KernelId add_kernel(KernelInfo info);

  int num_arrays() const noexcept { return static_cast<int>(arrays_.size()); }
  int num_kernels() const noexcept { return static_cast<int>(kernels_.size()); }

  const ArrayInfo& array(ArrayId id) const;
  ArrayInfo& array(ArrayId id);
  const KernelInfo& kernel(KernelId id) const;
  KernelInfo& kernel(KernelId id);

  const std::vector<ArrayInfo>& arrays() const noexcept { return arrays_; }
  const std::vector<KernelInfo>& kernels() const noexcept { return kernels_; }

  ArrayId find_array(const std::string& name) const noexcept;   ///< -1 if absent
  KernelId find_kernel(const std::string& name) const noexcept; ///< -1 if absent

  /// Number of thread blocks per kernel launch (the paper's B).
  long blocks() const noexcept;

  /// Bytes of one full 3D array.
  double array_bytes(ArrayId id) const;

  /// True if every kernel has an executable body.
  bool fully_executable() const noexcept;

  /// Throws PreconditionError describing the first structural problem:
  /// out-of-range array ids, duplicate names, kernels without accesses,
  /// writes with non-center patterns.
  void validate() const;

  /// Copy with every array's element width set to `elem_bytes` (4 = single
  /// precision, as the paper uses on the GTX 750 Ti).
  Program with_precision(int elem_bytes) const;

 private:
  std::string name_ = "program";
  GridDims grid_;
  LaunchConfig launch_;
  std::vector<ArrayInfo> arrays_;
  std::vector<KernelInfo> kernels_;
};

}  // namespace kf
