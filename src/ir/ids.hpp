// Integer identifiers for IR entities.
//
// Kernels and arrays are stored in flat vectors inside kf::Program; the ids
// are indices into those vectors. Programs in this domain are small (at most
// a few hundred kernels), so 32-bit ids are ample.
#pragma once

#include <cstdint>

namespace kf {

using KernelId = std::int32_t;
using ArrayId = std::int32_t;

inline constexpr KernelId kInvalidKernel = -1;
inline constexpr ArrayId kInvalidArray = -1;

}  // namespace kf
