#include "ir/kernel_info.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace kf {

const char* to_string(AccessMode mode) noexcept {
  switch (mode) {
    case AccessMode::Read:
      return "read";
    case AccessMode::Write:
      return "write";
    case AccessMode::ReadWrite:
      return "readwrite";
  }
  return "?";
}

const ArrayAccess* KernelInfo::find_access(ArrayId array) const noexcept {
  for (const auto& a : accesses) {
    if (a.array == array) return &a;
  }
  return nullptr;
}

bool KernelInfo::reads(ArrayId array) const noexcept {
  const ArrayAccess* a = find_access(array);
  return a != nullptr && a->is_read();
}

bool KernelInfo::writes(ArrayId array) const noexcept {
  const ArrayAccess* a = find_access(array);
  return a != nullptr && a->is_write();
}

int KernelInfo::thread_load(ArrayId array) const noexcept {
  const ArrayAccess* a = find_access(array);
  if (a == nullptr || !a->is_read()) return 0;
  return a->pattern.thread_load();
}

int KernelInfo::max_halo_radius() const noexcept {
  int r = 0;
  for (const auto& a : accesses) {
    if (a.is_read()) r = std::max(r, a.pattern.horizontal_radius());
  }
  return r;
}

double KernelInfo::flops_for_array(ArrayId array) const noexcept {
  const ArrayAccess* a = find_access(array);
  return a ? a->flops : 0.0;
}

std::vector<ArrayId> KernelInfo::read_arrays() const {
  std::vector<ArrayId> out;
  for (const auto& a : accesses) {
    if (a.is_read()) out.push_back(a.array);
  }
  return out;
}

std::vector<ArrayId> KernelInfo::written_arrays() const {
  std::vector<ArrayId> out;
  for (const auto& a : accesses) {
    if (a.is_write()) out.push_back(a.array);
  }
  return out;
}

void KernelInfo::derive_metadata_from_body() {
  KF_REQUIRE(!body.empty(), "kernel '" << name << "' has no body to derive from");

  struct Usage {
    std::vector<Offset> read_offsets;
    bool written = false;
    double flops = 0.0;
    int first_write_stmt = -1;
    int first_read_stmt = -1;
  };
  std::map<ArrayId, Usage> usage;

  double total_flops = 0.0;
  for (std::size_t si = 0; si < body.size(); ++si) {
    const auto& stmt = body[si];
    KF_REQUIRE(stmt.out != kInvalidArray, "statement writes an invalid array");
    const int stmt_flops = stmt.expr.flops();
    total_flops += stmt_flops;
    const auto loads = stmt.expr.loads();
    // Attribute the statement's FLOPs evenly across the arrays it loads —
    // the paper's Flop(x) accounting needs per-array shares, not exactness.
    const double share =
        loads.empty() ? 0.0 : static_cast<double>(stmt_flops) / loads.size();
    for (const auto& [array, offset] : loads) {
      Usage& u = usage[array];
      u.read_offsets.push_back(offset);
      u.flops += share;
      if (u.first_read_stmt < 0) u.first_read_stmt = static_cast<int>(si);
    }
    Usage& w = usage[stmt.out];
    w.written = true;
    if (w.first_write_stmt < 0) w.first_write_stmt = static_cast<int>(si);
  }

  accesses.clear();
  for (auto& [array, u] : usage) {
    ArrayAccess a;
    a.array = array;
    if (u.written && !u.read_offsets.empty()) {
      a.mode = AccessMode::ReadWrite;
      a.reads_own_product =
          u.first_write_stmt >= 0 && u.first_read_stmt > u.first_write_stmt;
    } else if (u.written) {
      a.mode = AccessMode::Write;
    } else {
      a.mode = AccessMode::Read;
    }
    a.pattern = u.read_offsets.empty() ? StencilPattern::point()
                                       : StencilPattern(std::move(u.read_offsets));
    a.flops = u.flops;
    accesses.push_back(std::move(a));
  }
  flops_per_site = total_flops;
}

}  // namespace kf
