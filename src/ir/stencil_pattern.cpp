#include "ir/stencil_pattern.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace kf {

StencilPattern::StencilPattern(std::vector<Offset> offsets) : offsets_(std::move(offsets)) {
  std::sort(offsets_.begin(), offsets_.end());
  offsets_.erase(std::unique(offsets_.begin(), offsets_.end()), offsets_.end());
}

StencilPattern StencilPattern::point() { return StencilPattern({{0, 0, 0}}); }

StencilPattern StencilPattern::cross2d(int radius) {
  KF_REQUIRE(radius >= 0, "cross2d radius must be non-negative");
  std::vector<Offset> o{{0, 0, 0}};
  for (int r = 1; r <= radius; ++r) {
    o.push_back({r, 0, 0});
    o.push_back({-r, 0, 0});
    o.push_back({0, r, 0});
    o.push_back({0, -r, 0});
  }
  return StencilPattern(std::move(o));
}

StencilPattern StencilPattern::box2d(int radius) {
  KF_REQUIRE(radius >= 0, "box2d radius must be non-negative");
  std::vector<Offset> o;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      o.push_back({dx, dy, 0});
    }
  }
  return StencilPattern(std::move(o));
}

StencilPattern StencilPattern::column(int radius) {
  KF_REQUIRE(radius >= 0, "column radius must be non-negative");
  std::vector<Offset> o{{0, 0, 0}};
  for (int r = 1; r <= radius; ++r) {
    o.push_back({0, 0, r});
    o.push_back({0, 0, -r});
  }
  return StencilPattern(std::move(o));
}

StencilPattern StencilPattern::backward2d(int points) {
  KF_REQUIRE(points >= 1 && points <= 4, "backward2d supports 1..4 points");
  static const Offset order[4] = {{0, 0, 0}, {-1, 0, 0}, {0, -1, 0}, {-1, -1, 0}};
  std::vector<Offset> o(order, order + points);
  return StencilPattern(std::move(o));
}

StencilPattern StencilPattern::with_thread_load(int load) {
  KF_REQUIRE(load >= 1, "thread load must be at least 1");
  // Enumerate offsets by Chebyshev ring, then by (dy, dx), until `load`
  // distinct horizontal offsets are collected.
  std::vector<Offset> o;
  o.push_back({0, 0, 0});
  for (int ring = 1; static_cast<int>(o.size()) < load; ++ring) {
    for (int dy = -ring; dy <= ring && static_cast<int>(o.size()) < load; ++dy) {
      for (int dx = -ring; dx <= ring && static_cast<int>(o.size()) < load; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        o.push_back({dx, dy, 0});
      }
    }
  }
  return StencilPattern(std::move(o));
}

int StencilPattern::horizontal_radius() const noexcept {
  int r = 0;
  for (const auto& o : offsets_) r = std::max({r, std::abs(o.dx), std::abs(o.dy)});
  return r;
}

int StencilPattern::vertical_radius() const noexcept {
  int r = 0;
  for (const auto& o : offsets_) r = std::max(r, std::abs(o.dz));
  return r;
}

int StencilPattern::thread_load() const noexcept {
  std::set<std::pair<int, int>> horizontal;
  for (const auto& o : offsets_) horizontal.emplace(o.dx, o.dy);
  return static_cast<int>(horizontal.size());
}

StencilPattern StencilPattern::merged_with(const StencilPattern& other) const {
  std::vector<Offset> o = offsets_;
  o.insert(o.end(), other.offsets_.begin(), other.offsets_.end());
  return StencilPattern(std::move(o));
}

bool StencilPattern::contains(const Offset& o) const noexcept {
  return std::binary_search(offsets_.begin(), offsets_.end(), o);
}

std::string StencilPattern::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    if (i) os << ' ';
    os << '(' << offsets_[i].dx << ',' << offsets_[i].dy << ',' << offsets_[i].dz << ')';
  }
  os << '}';
  return os.str();
}

}  // namespace kf
