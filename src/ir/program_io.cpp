#include "ir/program_io.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"

namespace kf {
namespace {

/// Strict integer parse: the whole token must be a number that fits.
/// Throws RuntimeError with the line number otherwise (std::stoi would
/// abort the process through an unexpected std::invalid_argument /
/// std::out_of_range on malformed or oversized input).
int parse_int(std::string_view text, int line_no, const char* what) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw RuntimeError(strprintf("line %d: bad integer '%s' for %s", line_no,
                                 std::string(text).c_str(), what));
  }
  return value;
}

/// Strict double parse with the same contract as parse_int.
double parse_double(std::string_view text, int line_no, const char* what) {
  const std::string s(text);
  try {
    std::size_t used = 0;
    const double value = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw RuntimeError(strprintf("line %d: bad number '%s' for %s", line_no,
                                 s.c_str(), what));
  }
}

std::string offsets_to_text(const StencilPattern& p) {
  std::string out;
  const auto& offs = p.offsets();
  for (std::size_t i = 0; i < offs.size(); ++i) {
    if (i) out += ';';
    out += strprintf("(%d,%d,%d)", offs[i].dx, offs[i].dy, offs[i].dz);
  }
  return out;
}

StencilPattern offsets_from_text(std::string_view text, int line_no) {
  std::vector<Offset> offs;
  for (const std::string& part : split(text, ';')) {
    const std::string_view t = trim(part);
    if (t.empty()) continue;
    Offset o;
    if (std::sscanf(std::string(t).c_str(), "(%d,%d,%d)", &o.dx, &o.dy, &o.dz) != 3) {
      throw RuntimeError(strprintf("line %d: bad offset '%s'", line_no,
                                   std::string(t).c_str()));
    }
    offs.push_back(o);
  }
  if (offs.empty()) {
    throw RuntimeError(strprintf("line %d: empty offset list", line_no));
  }
  return StencilPattern(std::move(offs));
}

AccessMode mode_from_text(std::string_view text, int line_no) {
  if (text == "read") return AccessMode::Read;
  if (text == "write") return AccessMode::Write;
  if (text == "readwrite") return AccessMode::ReadWrite;
  throw RuntimeError(strprintf("line %d: bad access mode '%s'", line_no,
                               std::string(text).c_str()));
}

/// Parses "key=value" returning value; throws on mismatch.
std::string expect_kv(std::string_view token, std::string_view key, int line_no) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || token.substr(0, eq) != key) {
    throw RuntimeError(strprintf("line %d: expected %s=..., got '%s'", line_no,
                                 std::string(key).c_str(), std::string(token).c_str()));
  }
  return std::string(token.substr(eq + 1));
}

}  // namespace

void write_text(std::ostream& os, const Program& program) {
  os << "program " << program.name() << '\n';
  os << "grid " << program.grid().nx << ' ' << program.grid().ny << ' '
     << program.grid().nz << '\n';
  os << "launch " << program.launch().block_x << ' ' << program.launch().block_y << '\n';
  for (const ArrayInfo& a : program.arrays()) {
    os << "array " << a.name << ' ' << a.elem_bytes;
    if (a.readonly_cache_eligible) os << " rocache";
    os << '\n';
  }
  for (const KernelInfo& k : program.kernels()) {
    os << "kernel " << k.name << " regs=" << k.regs_per_thread
       << " adrregs=" << k.addr_regs << " flops=" << k.flops_per_site
       << " smem=" << (k.smem_in_original ? 1 : 0);
    if (k.phase != 0) os << " phase=" << k.phase;
    os << '\n';
    for (const ArrayAccess& acc : k.accesses) {
      os << "  access " << program.array(acc.array).name << ' ' << to_string(acc.mode)
         << " flops=" << acc.flops << " offsets=" << offsets_to_text(acc.pattern);
      if (acc.reads_own_product) os << " own=1";
      os << '\n';
    }
    os << "end\n";
  }
}

std::string to_text(const Program& program) {
  std::ostringstream os;
  write_text(os, program);
  return os.str();
}

Program read_program(std::istream& is) {
  std::string name = "program";
  GridDims grid;
  LaunchConfig launch;
  Program program;
  bool header_done = false;
  KernelInfo current;
  bool in_kernel = false;

  auto flush_header = [&] {
    if (!header_done) {
      program = Program(name, grid, launch);
      header_done = true;
    }
  };

  // Semantic checks in Program (add_array/add_kernel/validate) throw
  // PreconditionError without input context; rethrow as the parser's
  // RuntimeError carrying the offending line number.
  auto with_line = [](int line_no, auto&& fn) {
    try {
      fn();
    } catch (const PreconditionError& e) {
      throw RuntimeError(strprintf("line %d: %s", line_no, e.what()));
    }
  };

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (FaultInjector::instance().should_inject(
            FaultSite::Parser, static_cast<std::uint64_t>(line_no))) {
      throw RuntimeError(
          strprintf("line %d: parse failed [injected parser fault]", line_no));
    }
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    std::istringstream ls{std::string(t)};
    std::string word;
    ls >> word;
    if (word == "program") {
      ls >> name;
    } else if (word == "grid") {
      ls >> grid.nx >> grid.ny >> grid.nz;
      if (!ls) throw RuntimeError(strprintf("line %d: bad grid line", line_no));
      if (grid.nx <= 0 || grid.ny <= 0 || grid.nz <= 0) {
        throw RuntimeError(strprintf("line %d: grid dims must be positive, got %ld %ld %ld",
                                     line_no, static_cast<long>(grid.nx),
                                     static_cast<long>(grid.ny),
                                     static_cast<long>(grid.nz)));
      }
    } else if (word == "launch") {
      ls >> launch.block_x >> launch.block_y;
      if (!ls) throw RuntimeError(strprintf("line %d: bad launch line", line_no));
      if (launch.block_x <= 0 || launch.block_y <= 0) {
        throw RuntimeError(strprintf("line %d: block dims must be positive", line_no));
      }
      if (launch.threads_per_block() > 1024) {
        throw RuntimeError(strprintf("line %d: %d threads per block exceeds 1024",
                                     line_no, launch.threads_per_block()));
      }
    } else if (word == "array") {
      flush_header();
      ArrayInfo info;
      ls >> info.name >> info.elem_bytes;
      if (!ls) throw RuntimeError(strprintf("line %d: bad array line", line_no));
      std::string flag;
      if (ls >> flag && flag == "rocache") info.readonly_cache_eligible = true;
      with_line(line_no, [&] { program.add_array(std::move(info)); });
    } else if (word == "kernel") {
      flush_header();
      if (in_kernel) throw RuntimeError(strprintf("line %d: nested kernel", line_no));
      in_kernel = true;
      current = KernelInfo{};
      ls >> current.name;
      std::string tok;
      while (ls >> tok) {
        if (starts_with(tok, "regs=")) {
          current.regs_per_thread = parse_int(expect_kv(tok, "regs", line_no), line_no, "regs");
        } else if (starts_with(tok, "adrregs=")) {
          current.addr_regs = parse_int(expect_kv(tok, "adrregs", line_no), line_no, "adrregs");
        } else if (starts_with(tok, "flops=")) {
          current.flops_per_site = parse_double(expect_kv(tok, "flops", line_no), line_no, "flops");
        } else if (starts_with(tok, "smem=")) {
          current.smem_in_original = expect_kv(tok, "smem", line_no) != "0";
        } else if (starts_with(tok, "phase=")) {
          current.phase = parse_int(expect_kv(tok, "phase", line_no), line_no, "phase");
        } else {
          throw RuntimeError(strprintf("line %d: unknown kernel attribute '%s'",
                                       line_no, tok.c_str()));
        }
      }
    } else if (word == "access") {
      if (!in_kernel) throw RuntimeError(strprintf("line %d: access outside kernel", line_no));
      std::string array_name;
      std::string mode_text;
      std::string flops_tok;
      std::string offsets_tok;
      ls >> array_name >> mode_text >> flops_tok >> offsets_tok;
      if (!ls) throw RuntimeError(strprintf("line %d: bad access line", line_no));
      const ArrayId id = program.find_array(array_name);
      if (id == kInvalidArray) {
        throw RuntimeError(strprintf("line %d: unknown array '%s'", line_no,
                                     array_name.c_str()));
      }
      ArrayAccess acc;
      acc.array = id;
      acc.mode = mode_from_text(mode_text, line_no);
      acc.flops = parse_double(expect_kv(flops_tok, "flops", line_no), line_no, "flops");
      acc.pattern = offsets_from_text(expect_kv(offsets_tok, "offsets", line_no), line_no);
      std::string own_tok;
      if (ls >> own_tok) {
        acc.reads_own_product = expect_kv(own_tok, "own", line_no) != "0";
      }
      current.accesses.push_back(std::move(acc));
    } else if (word == "end") {
      if (!in_kernel) throw RuntimeError(strprintf("line %d: stray end", line_no));
      in_kernel = false;
      with_line(line_no, [&] { program.add_kernel(std::move(current)); });
      current = KernelInfo{};
    } else {
      throw RuntimeError(strprintf("line %d: unknown directive '%s'", line_no,
                                   word.c_str()));
    }
  }
  if (in_kernel) {
    throw RuntimeError(strprintf("line %d: unterminated kernel block at end of input",
                                 line_no));
  }
  with_line(line_no, [&] {
    flush_header();
    program.validate();
  });
  return program;
}

Program parse_program(const std::string& text) {
  std::istringstream is(text);
  return read_program(is);
}

}  // namespace kf
