#include "ir/program_io.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace kf {
namespace {

std::string offsets_to_text(const StencilPattern& p) {
  std::string out;
  const auto& offs = p.offsets();
  for (std::size_t i = 0; i < offs.size(); ++i) {
    if (i) out += ';';
    out += strprintf("(%d,%d,%d)", offs[i].dx, offs[i].dy, offs[i].dz);
  }
  return out;
}

StencilPattern offsets_from_text(std::string_view text, int line_no) {
  std::vector<Offset> offs;
  for (const std::string& part : split(text, ';')) {
    const std::string_view t = trim(part);
    if (t.empty()) continue;
    Offset o;
    if (std::sscanf(std::string(t).c_str(), "(%d,%d,%d)", &o.dx, &o.dy, &o.dz) != 3) {
      throw RuntimeError(strprintf("line %d: bad offset '%s'", line_no,
                                   std::string(t).c_str()));
    }
    offs.push_back(o);
  }
  if (offs.empty()) {
    throw RuntimeError(strprintf("line %d: empty offset list", line_no));
  }
  return StencilPattern(std::move(offs));
}

AccessMode mode_from_text(std::string_view text, int line_no) {
  if (text == "read") return AccessMode::Read;
  if (text == "write") return AccessMode::Write;
  if (text == "readwrite") return AccessMode::ReadWrite;
  throw RuntimeError(strprintf("line %d: bad access mode '%s'", line_no,
                               std::string(text).c_str()));
}

/// Parses "key=value" returning value; throws on mismatch.
std::string expect_kv(std::string_view token, std::string_view key, int line_no) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || token.substr(0, eq) != key) {
    throw RuntimeError(strprintf("line %d: expected %s=..., got '%s'", line_no,
                                 std::string(key).c_str(), std::string(token).c_str()));
  }
  return std::string(token.substr(eq + 1));
}

}  // namespace

void write_text(std::ostream& os, const Program& program) {
  os << "program " << program.name() << '\n';
  os << "grid " << program.grid().nx << ' ' << program.grid().ny << ' '
     << program.grid().nz << '\n';
  os << "launch " << program.launch().block_x << ' ' << program.launch().block_y << '\n';
  for (const ArrayInfo& a : program.arrays()) {
    os << "array " << a.name << ' ' << a.elem_bytes;
    if (a.readonly_cache_eligible) os << " rocache";
    os << '\n';
  }
  for (const KernelInfo& k : program.kernels()) {
    os << "kernel " << k.name << " regs=" << k.regs_per_thread
       << " adrregs=" << k.addr_regs << " flops=" << k.flops_per_site
       << " smem=" << (k.smem_in_original ? 1 : 0);
    if (k.phase != 0) os << " phase=" << k.phase;
    os << '\n';
    for (const ArrayAccess& acc : k.accesses) {
      os << "  access " << program.array(acc.array).name << ' ' << to_string(acc.mode)
         << " flops=" << acc.flops << " offsets=" << offsets_to_text(acc.pattern);
      if (acc.reads_own_product) os << " own=1";
      os << '\n';
    }
    os << "end\n";
  }
}

std::string to_text(const Program& program) {
  std::ostringstream os;
  write_text(os, program);
  return os.str();
}

Program read_program(std::istream& is) {
  std::string name = "program";
  GridDims grid;
  LaunchConfig launch;
  Program program;
  bool header_done = false;
  KernelInfo current;
  bool in_kernel = false;

  auto flush_header = [&] {
    if (!header_done) {
      program = Program(name, grid, launch);
      header_done = true;
    }
  };

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    std::istringstream ls{std::string(t)};
    std::string word;
    ls >> word;
    if (word == "program") {
      ls >> name;
    } else if (word == "grid") {
      ls >> grid.nx >> grid.ny >> grid.nz;
      if (!ls) throw RuntimeError(strprintf("line %d: bad grid line", line_no));
    } else if (word == "launch") {
      ls >> launch.block_x >> launch.block_y;
      if (!ls) throw RuntimeError(strprintf("line %d: bad launch line", line_no));
    } else if (word == "array") {
      flush_header();
      ArrayInfo info;
      ls >> info.name >> info.elem_bytes;
      if (!ls) throw RuntimeError(strprintf("line %d: bad array line", line_no));
      std::string flag;
      if (ls >> flag && flag == "rocache") info.readonly_cache_eligible = true;
      program.add_array(std::move(info));
    } else if (word == "kernel") {
      flush_header();
      if (in_kernel) throw RuntimeError(strprintf("line %d: nested kernel", line_no));
      in_kernel = true;
      current = KernelInfo{};
      ls >> current.name;
      std::string tok;
      while (ls >> tok) {
        if (starts_with(tok, "regs=")) {
          current.regs_per_thread = std::stoi(expect_kv(tok, "regs", line_no));
        } else if (starts_with(tok, "adrregs=")) {
          current.addr_regs = std::stoi(expect_kv(tok, "adrregs", line_no));
        } else if (starts_with(tok, "flops=")) {
          current.flops_per_site = std::stod(expect_kv(tok, "flops", line_no));
        } else if (starts_with(tok, "smem=")) {
          current.smem_in_original = expect_kv(tok, "smem", line_no) != "0";
        } else if (starts_with(tok, "phase=")) {
          current.phase = std::stoi(expect_kv(tok, "phase", line_no));
        } else {
          throw RuntimeError(strprintf("line %d: unknown kernel attribute '%s'",
                                       line_no, tok.c_str()));
        }
      }
    } else if (word == "access") {
      if (!in_kernel) throw RuntimeError(strprintf("line %d: access outside kernel", line_no));
      std::string array_name;
      std::string mode_text;
      std::string flops_tok;
      std::string offsets_tok;
      ls >> array_name >> mode_text >> flops_tok >> offsets_tok;
      if (!ls) throw RuntimeError(strprintf("line %d: bad access line", line_no));
      const ArrayId id = program.find_array(array_name);
      if (id == kInvalidArray) {
        throw RuntimeError(strprintf("line %d: unknown array '%s'", line_no,
                                     array_name.c_str()));
      }
      ArrayAccess acc;
      acc.array = id;
      acc.mode = mode_from_text(mode_text, line_no);
      acc.flops = std::stod(expect_kv(flops_tok, "flops", line_no));
      acc.pattern = offsets_from_text(expect_kv(offsets_tok, "offsets", line_no), line_no);
      std::string own_tok;
      if (ls >> own_tok) {
        acc.reads_own_product = expect_kv(own_tok, "own", line_no) != "0";
      }
      current.accesses.push_back(std::move(acc));
    } else if (word == "end") {
      if (!in_kernel) throw RuntimeError(strprintf("line %d: stray end", line_no));
      in_kernel = false;
      program.add_kernel(std::move(current));
      current = KernelInfo{};
    } else {
      throw RuntimeError(strprintf("line %d: unknown directive '%s'", line_no,
                                   word.c_str()));
    }
  }
  if (in_kernel) throw RuntimeError("unterminated kernel block at end of input");
  flush_header();
  program.validate();
  return program;
}

Program parse_program(const std::string& text) {
  std::istringstream is(text);
  return read_program(is);
}

}  // namespace kf
