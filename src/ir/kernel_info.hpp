// Kernel and array descriptions — the paper's Table III metadata.
//
// A KernelInfo is the unit the whole pipeline operates on: the dependency
// and execution-order graphs are built from its accesses, the projection
// models consume its resource metadata, and (when a body is present) the
// stencil engine executes it for functional validation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/expression.hpp"
#include "ir/ids.hpp"
#include "ir/stencil_pattern.hpp"

namespace kf {

enum class AccessMode { Read, Write, ReadWrite };

const char* to_string(AccessMode mode) noexcept;

/// One kernel's use of one array.
struct ArrayAccess {
  ArrayId array = kInvalidArray;
  AccessMode mode = AccessMode::Read;
  /// Offsets dereferenced relative to the thread's site. Writes are always
  /// at the center point (SIMT one-site-per-thread ownership).
  StencilPattern pattern = StencilPattern::point();
  /// FLOPs per site attributable to this array (the paper's Flop(x)).
  double flops = 0.0;
  /// For ReadWrite accesses: true when every read happens *after* the
  /// kernel's first write of the array (the kernel consumes its own
  /// product, e.g. Kern_A of Fig. 3 re-reading the A it just computed).
  /// False means the kernel reads the previous contents (accumulation).
  bool reads_own_product = false;

  bool is_read() const noexcept { return mode != AccessMode::Write; }
  bool is_write() const noexcept { return mode != AccessMode::Read; }
};

/// A data array. All arrays span the program's grid (the paper's uniform
/// finite-difference fields); only the element width varies.
struct ArrayInfo {
  std::string name;
  int elem_bytes = 8;  ///< 8 = double precision, 4 = single
  /// Arrays that are read-only for the whole program may be served by the
  /// Kepler 48 KB read-only cache instead of SMEM (paper §II-C).
  bool readonly_cache_eligible = false;
};

/// An original GPU kernel: accesses + Table III resource metadata +
/// (optionally) an executable body.
struct KernelInfo {
  std::string name;
  std::vector<ArrayAccess> accesses;
  /// Executable body; empty for metadata-only programs (large app models).
  std::vector<StencilStatement> body;

  // ---- Table III metadata (measured on the original kernel) ----
  int regs_per_thread = 32;  ///< R_T
  int addr_regs = 10;        ///< R_Adr: registers holding addresses/indices
  /// T_B: threads of a block active in the main computation (loop-bound
  /// alignment can idle some); 0 means all threads are active.
  int active_threads = 0;
  /// Program phase. Host-device transfers, communication (halo exchange)
  /// or CUDA stream boundaries between invocations are fusion barriers
  /// (§II-C); kernels in different phases can never be fused together.
  int phase = 0;
  double flops_per_site = 0.0;  ///< Fl, per stencil site
  /// True if the original implementation already stages its high-thread-load
  /// arrays through SMEM (the paper's rigorously optimised originals do).
  bool smem_in_original = true;

  // ---- queries ----
  const ArrayAccess* find_access(ArrayId array) const noexcept;
  bool reads(ArrayId array) const noexcept;
  bool writes(ArrayId array) const noexcept;

  /// ThrLD(x): 0 when the kernel does not read the array.
  int thread_load(ArrayId array) const noexcept;

  /// Widest horizontal stencil radius over all read accesses.
  int max_halo_radius() const noexcept;

  /// Flop(x) — 0 when the kernel does not access the array.
  double flops_for_array(ArrayId array) const noexcept;

  std::vector<ArrayId> read_arrays() const;
  std::vector<ArrayId> written_arrays() const;

  /// Recompute `accesses` and `flops_per_site` from `body`, keeping the
  /// written set's patterns at the center point. Throws if the body is empty.
  void derive_metadata_from_body();
};

}  // namespace kf
