// Executable stencil expressions.
//
// Kernels that participate in functional validation carry a body of
// StencilStatements; each statement writes one array element per grid site,
// computed by an Expr tree over constants and neighbour loads. The tree is
// plain data: the stencil engine (kf_stencil) interprets it, the IR derives
// access metadata (patterns, FLOP counts) from it, and the GPU simulator
// never needs it — mirroring the paper's "codeless" projection model, which
// consumes only the metadata.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/ids.hpp"
#include "ir/stencil_pattern.hpp"

namespace kf {

enum class ExprKind { Constant, Load, Add, Sub, Mul, Div, Min, Max };

/// True for the arithmetic node kinds (everything but Constant/Load).
bool is_arithmetic(ExprKind kind) noexcept;

class Expr {
 public:
  /// A default-constructed Expr evaluates to 0.0.
  Expr();

  static Expr constant(double value);
  static Expr load(ArrayId array, Offset offset = {});

  static Expr binary(ExprKind kind, const Expr& lhs, const Expr& rhs);

  friend Expr operator+(const Expr& a, const Expr& b) { return binary(ExprKind::Add, a, b); }
  friend Expr operator-(const Expr& a, const Expr& b) { return binary(ExprKind::Sub, a, b); }
  friend Expr operator*(const Expr& a, const Expr& b) { return binary(ExprKind::Mul, a, b); }
  friend Expr operator/(const Expr& a, const Expr& b) { return binary(ExprKind::Div, a, b); }
  static Expr min(const Expr& a, const Expr& b) { return binary(ExprKind::Min, a, b); }
  static Expr max(const Expr& a, const Expr& b) { return binary(ExprKind::Max, a, b); }

  /// Callback resolving a load: (array, offset) -> value at the current site.
  using LoadFn = std::function<double(ArrayId, const Offset&)>;

  double eval(const LoadFn& load) const;

  /// Number of arithmetic operations in the tree (the paper's FLOP count).
  int flops() const noexcept;

  /// All (array, offset) loads in the tree, in deterministic order.
  std::vector<std::pair<ArrayId, Offset>> loads() const;

  /// Offsets with which `array` is loaded (deduplicated).
  StencilPattern pattern_for(ArrayId array) const;

  /// Copy of the tree with every load's array id passed through `map`.
  Expr with_remapped_arrays(const std::function<ArrayId(ArrayId)>& map) const;

  std::string to_string() const;

  /// Renders the tree as C-like source, resolving each load through
  /// `render_load` (used by the CUDA emitter).
  using RenderFn = std::function<std::string(ArrayId, const Offset&)>;
  std::string render(const RenderFn& render_load) const;

  bool empty() const noexcept { return nodes_.empty(); }

 private:
  struct Node {
    ExprKind kind = ExprKind::Constant;
    double value = 0.0;          // Constant
    ArrayId array = kInvalidArray;  // Load
    Offset offset;               // Load
    int lhs = -1;                // binary ops: child node indices
    int rhs = -1;
  };

  // Flat postorder storage; the root is the last node.
  std::vector<Node> nodes_;

  double eval_node(int index, const LoadFn& load) const;
  std::string node_to_string(int index) const;
};

/// One assignment `out[i,j,k] = expr` executed at every interior grid site.
struct StencilStatement {
  ArrayId out = kInvalidArray;
  Expr expr;
};

}  // namespace kf
