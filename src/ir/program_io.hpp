// Text (de)serialization of program metadata.
//
// The format captures everything the search and projection pipeline needs —
// arrays, kernels, accesses, Table III metadata — but not executable bodies
// (bodies exist only for functional validation and are defined in code).
// It is line-oriented and diff-friendly so app models can be checked in as
// fixtures and inspected by hand:
//
//   program rk3
//   grid 1280 32 32
//   launch 32 4
//   array DENS 8
//   kernel k_1 regs=40 adrregs=10 flops=12 smem=1
//     access DENS read flops=6 offsets=(0,0,0);(-1,0,0)
//     access MOMZ write flops=0 offsets=(0,0,0)
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "ir/program.hpp"

namespace kf {

std::string to_text(const Program& program);
void write_text(std::ostream& os, const Program& program);

/// Parses the textual form. Throws kf::RuntimeError with a line number on
/// malformed input. The result is validate()d before returning.
Program parse_program(const std::string& text);
Program read_program(std::istream& is);

}  // namespace kf
