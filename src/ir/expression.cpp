#include "ir/expression.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace kf {

bool is_arithmetic(ExprKind kind) noexcept {
  return kind != ExprKind::Constant && kind != ExprKind::Load;
}

Expr::Expr() = default;

Expr Expr::constant(double value) {
  Expr e;
  Node n;
  n.kind = ExprKind::Constant;
  n.value = value;
  e.nodes_.push_back(n);
  return e;
}

Expr Expr::load(ArrayId array, Offset offset) {
  KF_REQUIRE(array != kInvalidArray, "Expr::load requires a valid array id");
  Expr e;
  Node n;
  n.kind = ExprKind::Load;
  n.array = array;
  n.offset = offset;
  e.nodes_.push_back(n);
  return e;
}

Expr Expr::binary(ExprKind kind, const Expr& lhs, const Expr& rhs) {
  KF_REQUIRE(is_arithmetic(kind), "Expr::binary requires an arithmetic kind");
  KF_REQUIRE(!lhs.empty() && !rhs.empty(), "Expr::binary requires non-empty operands");
  Expr e;
  e.nodes_ = lhs.nodes_;
  const int lhs_root = static_cast<int>(e.nodes_.size()) - 1;
  const int base = static_cast<int>(e.nodes_.size());
  for (Node n : rhs.nodes_) {
    if (n.lhs >= 0) n.lhs += base;
    if (n.rhs >= 0) n.rhs += base;
    e.nodes_.push_back(n);
  }
  const int rhs_root = static_cast<int>(e.nodes_.size()) - 1;
  Node top;
  top.kind = kind;
  top.lhs = lhs_root;
  top.rhs = rhs_root;
  e.nodes_.push_back(top);
  return e;
}

double Expr::eval(const LoadFn& load) const {
  if (nodes_.empty()) return 0.0;
  return eval_node(static_cast<int>(nodes_.size()) - 1, load);
}

double Expr::eval_node(int index, const LoadFn& load) const {
  const Node& n = nodes_[static_cast<std::size_t>(index)];
  switch (n.kind) {
    case ExprKind::Constant:
      return n.value;
    case ExprKind::Load:
      return load(n.array, n.offset);
    case ExprKind::Add:
      return eval_node(n.lhs, load) + eval_node(n.rhs, load);
    case ExprKind::Sub:
      return eval_node(n.lhs, load) - eval_node(n.rhs, load);
    case ExprKind::Mul:
      return eval_node(n.lhs, load) * eval_node(n.rhs, load);
    case ExprKind::Div:
      return eval_node(n.lhs, load) / eval_node(n.rhs, load);
    case ExprKind::Min:
      return std::min(eval_node(n.lhs, load), eval_node(n.rhs, load));
    case ExprKind::Max:
      return std::max(eval_node(n.lhs, load), eval_node(n.rhs, load));
  }
  KF_CHECK(false, "unreachable expression kind");
  return 0.0;
}

int Expr::flops() const noexcept {
  int count = 0;
  for (const Node& n : nodes_) {
    if (is_arithmetic(n.kind)) ++count;
  }
  return count;
}

std::vector<std::pair<ArrayId, Offset>> Expr::loads() const {
  std::vector<std::pair<ArrayId, Offset>> out;
  for (const Node& n : nodes_) {
    if (n.kind == ExprKind::Load) out.emplace_back(n.array, n.offset);
  }
  return out;
}

StencilPattern Expr::pattern_for(ArrayId array) const {
  std::vector<Offset> offsets;
  for (const Node& n : nodes_) {
    if (n.kind == ExprKind::Load && n.array == array) offsets.push_back(n.offset);
  }
  return StencilPattern(std::move(offsets));
}

Expr Expr::with_remapped_arrays(const std::function<ArrayId(ArrayId)>& map) const {
  Expr out = *this;
  for (Node& n : out.nodes_) {
    if (n.kind == ExprKind::Load) n.array = map(n.array);
  }
  return out;
}

std::string Expr::to_string() const {
  if (nodes_.empty()) return "0";
  return node_to_string(static_cast<int>(nodes_.size()) - 1);
}

namespace {

std::string render_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  const std::string s = os.str();
  // Ensure a floating literal (avoid emitting "2" for 2.0).
  return s.find_first_of(".eE") == std::string::npos ? s + ".0" : s;
}

}  // namespace

std::string Expr::render(const RenderFn& render_load) const {
  if (nodes_.empty()) return "0.0";
  // Recursive lambda over node indices.
  const std::function<std::string(int)> walk = [&](int index) -> std::string {
    const Node& n = nodes_[static_cast<std::size_t>(index)];
    switch (n.kind) {
      case ExprKind::Constant:
        return render_double(n.value);
      case ExprKind::Load:
        return render_load(n.array, n.offset);
      case ExprKind::Min:
        return "fmin(" + walk(n.lhs) + ", " + walk(n.rhs) + ")";
      case ExprKind::Max:
        return "fmax(" + walk(n.lhs) + ", " + walk(n.rhs) + ")";
      default: {
        const char op = n.kind == ExprKind::Add   ? '+'
                        : n.kind == ExprKind::Sub ? '-'
                        : n.kind == ExprKind::Mul ? '*'
                                                  : '/';
        return "(" + walk(n.lhs) + " " + op + " " + walk(n.rhs) + ")";
      }
    }
  };
  return walk(static_cast<int>(nodes_.size()) - 1);
}

std::string Expr::node_to_string(int index) const {
  const Node& n = nodes_[static_cast<std::size_t>(index)];
  std::ostringstream os;
  switch (n.kind) {
    case ExprKind::Constant:
      os << n.value;
      break;
    case ExprKind::Load:
      os << "a" << n.array << "(" << n.offset.dx << "," << n.offset.dy << ","
         << n.offset.dz << ")";
      break;
    case ExprKind::Min:
    case ExprKind::Max:
      os << (n.kind == ExprKind::Min ? "min(" : "max(") << node_to_string(n.lhs)
         << ", " << node_to_string(n.rhs) << ")";
      break;
    default: {
      const char op = n.kind == ExprKind::Add   ? '+'
                      : n.kind == ExprKind::Sub ? '-'
                      : n.kind == ExprKind::Mul ? '*'
                                                : '/';
      os << "(" << node_to_string(n.lhs) << " " << op << " " << node_to_string(n.rhs)
         << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace kf
