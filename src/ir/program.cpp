#include "ir/program.hpp"

#include <set>

#include "util/error.hpp"

namespace kf {

Program::Program(std::string name, GridDims grid, LaunchConfig launch)
    : name_(std::move(name)), grid_(grid), launch_(launch) {
  KF_REQUIRE(grid_.nx > 0 && grid_.ny > 0 && grid_.nz > 0, "grid dims must be positive");
  set_launch(launch);
}

void Program::set_launch(const LaunchConfig& launch) {
  KF_REQUIRE(launch.block_x > 0 && launch.block_y > 0, "block dims must be positive");
  KF_REQUIRE(launch.threads_per_block() <= 1024,
             "threads per block " << launch.threads_per_block() << " exceeds 1024");
  launch_ = launch;
}

ArrayId Program::add_array(ArrayInfo info) {
  KF_REQUIRE(!info.name.empty(), "array needs a name");
  KF_REQUIRE(info.elem_bytes == 4 || info.elem_bytes == 8,
             "array '" << info.name << "': elem_bytes must be 4 or 8");
  KF_REQUIRE(find_array(info.name) == kInvalidArray,
             "duplicate array name '" << info.name << "'");
  arrays_.push_back(std::move(info));
  return static_cast<ArrayId>(arrays_.size() - 1);
}

ArrayId Program::add_array(std::string name, int elem_bytes) {
  ArrayInfo info;
  info.name = std::move(name);
  info.elem_bytes = elem_bytes;
  return add_array(std::move(info));
}

KernelId Program::add_kernel(KernelInfo info) {
  KF_REQUIRE(!info.name.empty(), "kernel needs a name");
  KF_REQUIRE(find_kernel(info.name) == kInvalidKernel,
             "duplicate kernel name '" << info.name << "'");
  kernels_.push_back(std::move(info));
  return static_cast<KernelId>(kernels_.size() - 1);
}

const ArrayInfo& Program::array(ArrayId id) const {
  KF_REQUIRE(id >= 0 && id < num_arrays(), "array id " << id << " out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

ArrayInfo& Program::array(ArrayId id) {
  KF_REQUIRE(id >= 0 && id < num_arrays(), "array id " << id << " out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

const KernelInfo& Program::kernel(KernelId id) const {
  KF_REQUIRE(id >= 0 && id < num_kernels(), "kernel id " << id << " out of range");
  return kernels_[static_cast<std::size_t>(id)];
}

KernelInfo& Program::kernel(KernelId id) {
  KF_REQUIRE(id >= 0 && id < num_kernels(), "kernel id " << id << " out of range");
  return kernels_[static_cast<std::size_t>(id)];
}

ArrayId Program::find_array(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    if (arrays_[i].name == name) return static_cast<ArrayId>(i);
  }
  return kInvalidArray;
}

KernelId Program::find_kernel(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    if (kernels_[i].name == name) return static_cast<KernelId>(i);
  }
  return kInvalidKernel;
}

long Program::blocks() const noexcept {
  const long bx = (grid_.nx + launch_.block_x - 1) / launch_.block_x;
  const long by = (grid_.ny + launch_.block_y - 1) / launch_.block_y;
  return bx * by;
}

double Program::array_bytes(ArrayId id) const {
  return static_cast<double>(grid_.total_sites()) * array(id).elem_bytes;
}

bool Program::fully_executable() const noexcept {
  for (const auto& k : kernels_) {
    if (k.body.empty()) return false;
  }
  return !kernels_.empty();
}

Program Program::with_precision(int elem_bytes) const {
  KF_REQUIRE(elem_bytes == 4 || elem_bytes == 8, "elem_bytes must be 4 or 8");
  Program copy = *this;
  for (ArrayInfo& a : copy.arrays_) a.elem_bytes = elem_bytes;
  return copy;
}

void Program::validate() const {
  std::set<std::string> names;
  for (const auto& a : arrays_) {
    KF_REQUIRE(names.insert(a.name).second, "duplicate array name '" << a.name << "'");
  }
  names.clear();
  for (std::size_t ki = 0; ki < kernels_.size(); ++ki) {
    const KernelInfo& k = kernels_[ki];
    KF_REQUIRE(names.insert(k.name).second, "duplicate kernel name '" << k.name << "'");
    KF_REQUIRE(!k.accesses.empty(), "kernel '" << k.name << "' touches no arrays");
    bool writes_something = false;
    std::set<ArrayId> seen;
    for (const auto& acc : k.accesses) {
      KF_REQUIRE(acc.array >= 0 && acc.array < num_arrays(),
                 "kernel '" << k.name << "' references array id " << acc.array
                            << " out of range");
      KF_REQUIRE(seen.insert(acc.array).second,
                 "kernel '" << k.name << "' has duplicate access entries for array '"
                            << array(acc.array).name << "'");
      KF_REQUIRE(!acc.pattern.empty(),
                 "kernel '" << k.name << "' has an empty access pattern");
      if (acc.mode == AccessMode::Write) {
        // SIMT ownership: a thread writes only its own site.
        KF_REQUIRE(acc.pattern == StencilPattern::point(),
                   "kernel '" << k.name << "' writes array '" << array(acc.array).name
                              << "' with a non-center pattern");
      }
      writes_something = writes_something || acc.is_write();
    }
    KF_REQUIRE(writes_something, "kernel '" << k.name << "' writes no arrays");
    KF_REQUIRE(k.regs_per_thread > 0, "kernel '" << k.name << "' has no registers");
    // Bodies, when present, must reference valid arrays.
    for (const auto& stmt : k.body) {
      KF_REQUIRE(stmt.out >= 0 && stmt.out < num_arrays(),
                 "kernel '" << k.name << "' body writes invalid array id " << stmt.out);
      for (const auto& [array_id, offset] : stmt.expr.loads()) {
        KF_REQUIRE(array_id >= 0 && array_id < num_arrays(),
                   "kernel '" << k.name << "' body loads invalid array id " << array_id);
        // A statement may read its own output only at the center: offset
        // self-reads would make the grid-wide pass order-dependent.
        KF_REQUIRE(array_id != stmt.out ||
                       (offset.dx == 0 && offset.dy == 0 && offset.dz == 0),
                   "kernel '" << k.name
                              << "' statement reads its own output at a non-center offset");
      }
    }
  }
  KF_REQUIRE(!kernels_.empty(), "program has no kernels");
}

}  // namespace kf
