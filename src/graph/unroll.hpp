// Timestep unrolling — the paper's multiple-call-site extension (§II-C).
//
// The method assumes every original kernel has a single call site; the
// paper proposes handling repeated invocations "as if they are invocations
// of different kernels" (the expandable-array idea applied to kernels).
// unroll_timesteps() materialises that: it clones the whole kernel sequence
// `steps` times (the body of a time loop), suffixing kernel names with the
// step index. Arrays are shared across steps — later steps read what
// earlier steps wrote, and rewrites become further expandable generations.
// Each step lands in its own phase block: a real time loop synchronises
// (halo exchange, I/O) between iterations, so fusion never crosses the
// step boundary.
#pragma once

#include "ir/program.hpp"

namespace kf {

/// Program with the kernel sequence repeated `steps` times. Step s's
/// kernels are named "<name>@s<s>" (s >= 2) and placed in fresh phases.
Program unroll_timesteps(const Program& program, int steps);

}  // namespace kf
