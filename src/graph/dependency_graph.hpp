// Data dependency graph (paper Fig. 1).
//
// A bipartite view of the program: kernels touch arrays; edge direction
// encodes intent (array -> kernel: read; kernel -> array: write). From the
// invocation order and these touches we classify every array into the
// paper's four usage classes and materialise kernel-to-kernel dependence
// edges (RAW / WAR / WAW) that the execution-order graph consumes.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace kf {

/// §II-B.1: the four ways arrays are touched over a program's lifetime.
enum class ArrayUsage {
  ReadOnly,            ///< never written — freely reusable
  WriteOnly,           ///< never read — not reusable
  ReadWrite,           ///< one writer generation, later read
  ExpandableReadWrite  ///< several writer kernels — relaxable by versioning
};

const char* to_string(ArrayUsage usage) noexcept;

enum class DepKind { RAW, WAR, WAW };

const char* to_string(DepKind kind) noexcept;

struct DependencyEdge {
  KernelId from = kInvalidKernel;  ///< must execute before `to`
  KernelId to = kInvalidKernel;
  ArrayId array = kInvalidArray;   ///< array inducing the dependence
  DepKind kind = DepKind::RAW;
};

/// Flags every program-wide read-only array as readonly_cache_eligible
/// (§II-C: such arrays may be served by Kepler's 48 KB read-only cache
/// instead of SMEM). Returns the number of arrays flagged.
int mark_readonly_arrays(Program& program);

class DependencyGraph {
 public:
  /// Analyzes the program (validate()d first).
  static DependencyGraph build(const Program& program);

  ArrayUsage usage(ArrayId array) const;

  /// Kernels writing `array`, in invocation order.
  const std::vector<KernelId>& writers(ArrayId array) const;
  /// Kernels reading `array`, in invocation order.
  const std::vector<KernelId>& readers(ArrayId array) const;

  const std::vector<DependencyEdge>& edges() const noexcept { return edges_; }

  int num_kernels() const noexcept { return num_kernels_; }
  int num_arrays() const noexcept { return static_cast<int>(usage_.size()); }

  /// Count of arrays in each usage class, indexed by ArrayUsage.
  std::vector<int> usage_histogram() const;

  /// Graphviz rendering in the style of Fig. 1 (kernels as circles, arrays
  /// as diamonds coloured by usage class).
  std::string to_dot(const Program& program) const;

 private:
  int num_kernels_ = 0;
  std::vector<ArrayUsage> usage_;
  std::vector<std::vector<KernelId>> writers_;
  std::vector<std::vector<KernelId>> readers_;
  std::vector<DependencyEdge> edges_;
};

}  // namespace kf
