// Small dense DAG utilities.
//
// Programs here have at most a few hundred kernels, so dense bitset
// reachability (n x n bits) is both the simplest and the fastest
// representation for the convexity queries the fusion legality checker
// performs millions of times during a search.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kf {

/// Dense n x n bit matrix with 64-bit word rows.
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(int n);

  int size() const noexcept { return n_; }

  bool get(int row, int col) const noexcept;
  void set(int row, int col) noexcept;

  /// rows_[dst] |= rows_[src]
  void or_row(int dst, int src) noexcept;

  /// Word view of one row (words_per_row() entries).
  std::span<const std::uint64_t> row(int r) const noexcept;
  std::span<std::uint64_t> row(int r) noexcept;

  int words_per_row() const noexcept { return wpr_; }

  /// Number of set bits in a row.
  int row_popcount(int r) const noexcept;

 private:
  int n_ = 0;
  int wpr_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Directed graph over vertices [0, n); must be acyclic for the queries
/// below (verified by topological_order / is_dag).
class Dag {
 public:
  Dag() = default;
  explicit Dag(int n);

  int size() const noexcept { return n_; }

  /// Adds u -> v; duplicate edges are ignored. Requires u != v in range.
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const noexcept;
  const std::vector<int>& successors(int u) const;
  const std::vector<int>& predecessors(int u) const;

  std::size_t num_edges() const noexcept { return edge_count_; }

  bool is_dag() const;

  /// Kahn topological order. Throws kf::RuntimeError if a cycle exists.
  std::vector<int> topological_order() const;

  /// Full transitive closure: result.get(u, v) == true iff a nonempty
  /// path u -> v exists. Throws on cycles.
  BitMatrix reachability() const;

  /// Transpose of reachability() (v reaches u), for backward queries.
  BitMatrix reverse_reachability() const;

  /// Minimal equivalent graph (for rendering Fig.-2-style diagrams).
  Dag transitive_reduction() const;

 private:
  int n_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;

  void check_vertex(int v) const;
};

}  // namespace kf
