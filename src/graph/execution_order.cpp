#include "graph/execution_order.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace kf {

ExecutionOrderGraph ExecutionOrderGraph::build(const Program& program) {
  return build(program, DependencyGraph::build(program));
}

ExecutionOrderGraph ExecutionOrderGraph::build(const Program& program,
                                               const DependencyGraph& deps) {
  KF_REQUIRE(deps.num_kernels() == program.num_kernels(),
             "dependency graph does not match program");
  ExecutionOrderGraph g;
  g.dag_ = Dag(program.num_kernels());
  for (const DependencyEdge& e : deps.edges()) {
    g.dag_.add_edge(e.from, e.to);
  }
  g.reach_ = g.dag_.reachability();
  return g;
}

bool ExecutionOrderGraph::must_precede(KernelId a, KernelId b) const noexcept {
  if (a < 0 || b < 0 || a >= dag_.size() || b >= dag_.size()) return false;
  return reach_.get(a, b);
}

bool ExecutionOrderGraph::has_internal_precedence(std::span<const KernelId> group) const {
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = 0; j < group.size(); ++j) {
      if (i != j && must_precede(group[i], group[j])) return true;
    }
  }
  return false;
}

bool ExecutionOrderGraph::group_is_convex(std::span<const KernelId> group) const {
  if (group.size() <= 1) return true;
  // Membership bitmap for O(1) "in group" tests.
  std::vector<char> in_group(static_cast<std::size_t>(dag_.size()), 0);
  for (KernelId k : group) {
    KF_REQUIRE(k >= 0 && k < dag_.size(), "kernel id " << k << " out of range");
    in_group[static_cast<std::size_t>(k)] = 1;
  }
  // For every ordered pair (a, b) with a -> b, any c with a -> c -> b must
  // be in the group. Scan candidates via the reachability rows.
  for (KernelId a : group) {
    for (KernelId b : group) {
      if (a == b || !reach_.get(a, b)) continue;
      for (int c = 0; c < dag_.size(); ++c) {
        if (!in_group[static_cast<std::size_t>(c)] && reach_.get(a, c) &&
            reach_.get(c, b)) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<KernelId> ExecutionOrderGraph::kernels_between(KernelId a, KernelId b) const {
  std::vector<KernelId> out;
  if (!must_precede(a, b)) return out;
  for (int c = 0; c < dag_.size(); ++c) {
    if (c != a && c != b && reach_.get(a, c) && reach_.get(c, b)) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<KernelId> ExecutionOrderGraph::topological_order() const {
  return dag_.topological_order();
}

std::string ExecutionOrderGraph::to_dot(const Program& program) const {
  const Dag reduced = dag_.transitive_reduction();
  std::ostringstream os;
  os << "digraph execution_order {\n  rankdir=LR;\n";
  for (KernelId k = 0; k < reduced.size(); ++k) {
    os << "  k" << k << " [shape=circle,label=\"" << program.kernel(k).name << "\"];\n";
  }
  for (KernelId k = 0; k < reduced.size(); ++k) {
    for (int v : reduced.successors(k)) {
      os << "  k" << k << " -> k" << v << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace kf
