#include "graph/dependency_graph.hpp"

#include <sstream>

#include "util/error.hpp"

namespace kf {

const char* to_string(ArrayUsage usage) noexcept {
  switch (usage) {
    case ArrayUsage::ReadOnly:
      return "read-only";
    case ArrayUsage::WriteOnly:
      return "write-only";
    case ArrayUsage::ReadWrite:
      return "read-write";
    case ArrayUsage::ExpandableReadWrite:
      return "expandable read-write";
  }
  return "?";
}

const char* to_string(DepKind kind) noexcept {
  switch (kind) {
    case DepKind::RAW:
      return "RAW";
    case DepKind::WAR:
      return "WAR";
    case DepKind::WAW:
      return "WAW";
  }
  return "?";
}

int mark_readonly_arrays(Program& program) {
  int flagged = 0;
  for (ArrayId a = 0; a < program.num_arrays(); ++a) {
    bool written = false;
    for (KernelId k = 0; !written && k < program.num_kernels(); ++k) {
      written = program.kernel(k).writes(a);
    }
    if (!written && !program.array(a).readonly_cache_eligible) {
      program.array(a).readonly_cache_eligible = true;
      ++flagged;
    }
  }
  return flagged;
}

DependencyGraph DependencyGraph::build(const Program& program) {
  program.validate();
  DependencyGraph g;
  g.num_kernels_ = program.num_kernels();
  const int na = program.num_arrays();
  g.usage_.assign(static_cast<std::size_t>(na), ArrayUsage::ReadOnly);
  g.writers_.assign(static_cast<std::size_t>(na), {});
  g.readers_.assign(static_cast<std::size_t>(na), {});

  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    for (const ArrayAccess& acc : program.kernel(k).accesses) {
      if (acc.is_write()) g.writers_[static_cast<std::size_t>(acc.array)].push_back(k);
      if (acc.is_read()) g.readers_[static_cast<std::size_t>(acc.array)].push_back(k);
    }
  }

  for (ArrayId a = 0; a < na; ++a) {
    const auto& w = g.writers_[static_cast<std::size_t>(a)];
    const auto& r = g.readers_[static_cast<std::size_t>(a)];
    ArrayUsage u;
    if (w.empty()) {
      u = ArrayUsage::ReadOnly;
    } else if (r.empty()) {
      u = ArrayUsage::WriteOnly;
    } else if (w.size() > 1) {
      u = ArrayUsage::ExpandableReadWrite;
    } else {
      u = ArrayUsage::ReadWrite;
    }
    g.usage_[static_cast<std::size_t>(a)] = u;
  }

  // Walk invocation order tracking, per array, the last writer and the
  // readers since that write; emit RAW / WAR / WAW edges.
  std::vector<KernelId> last_writer(static_cast<std::size_t>(na), kInvalidKernel);
  std::vector<std::vector<KernelId>> readers_since(static_cast<std::size_t>(na));
  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    for (const ArrayAccess& acc : program.kernel(k).accesses) {
      const auto ai = static_cast<std::size_t>(acc.array);
      if (acc.is_read() && !acc.reads_own_product) {
        // reads_own_product accesses consume the kernel's own values, so
        // they induce no RAW edge from the previous writer.
        if (last_writer[ai] != kInvalidKernel && last_writer[ai] != k) {
          g.edges_.push_back({last_writer[ai], k, acc.array, DepKind::RAW});
        }
        readers_since[ai].push_back(k);
      }
      if (acc.is_write()) {
        if (last_writer[ai] != kInvalidKernel && last_writer[ai] != k) {
          g.edges_.push_back({last_writer[ai], k, acc.array, DepKind::WAW});
        }
        for (KernelId reader : readers_since[ai]) {
          if (reader != k) g.edges_.push_back({reader, k, acc.array, DepKind::WAR});
        }
        last_writer[ai] = k;
        readers_since[ai].clear();
        // A ReadWrite access reads the value it just produced context for;
        // record the kernel as a reader of its own generation so a later
        // writer still orders after it.
        if (acc.mode == AccessMode::ReadWrite) readers_since[ai].push_back(k);
      }
    }
  }
  return g;
}

ArrayUsage DependencyGraph::usage(ArrayId array) const {
  KF_REQUIRE(array >= 0 && array < num_arrays(), "array id out of range");
  return usage_[static_cast<std::size_t>(array)];
}

const std::vector<KernelId>& DependencyGraph::writers(ArrayId array) const {
  KF_REQUIRE(array >= 0 && array < num_arrays(), "array id out of range");
  return writers_[static_cast<std::size_t>(array)];
}

const std::vector<KernelId>& DependencyGraph::readers(ArrayId array) const {
  KF_REQUIRE(array >= 0 && array < num_arrays(), "array id out of range");
  return readers_[static_cast<std::size_t>(array)];
}

std::vector<int> DependencyGraph::usage_histogram() const {
  std::vector<int> hist(4, 0);
  for (ArrayUsage u : usage_) ++hist[static_cast<std::size_t>(u)];
  return hist;
}

std::string DependencyGraph::to_dot(const Program& program) const {
  std::ostringstream os;
  os << "digraph dependency {\n  rankdir=TB;\n";
  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    os << "  k" << k << " [shape=circle,label=\"" << program.kernel(k).name << "\"];\n";
  }
  for (ArrayId a = 0; a < program.num_arrays(); ++a) {
    const char* color = nullptr;
    switch (usage(a)) {
      case ArrayUsage::ReadOnly:
        color = "red";
        break;
      case ArrayUsage::ReadWrite:
        color = "yellow";
        break;
      case ArrayUsage::ExpandableReadWrite:
        color = "blue";
        break;
      case ArrayUsage::WriteOnly:
        color = "green";
        break;
    }
    os << "  a" << a << " [shape=diamond,style=filled,fillcolor=" << color
       << ",label=\"" << program.array(a).name << "\"];\n";
  }
  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    for (const ArrayAccess& acc : program.kernel(k).accesses) {
      if (acc.is_read()) os << "  a" << acc.array << " -> k" << k << ";\n";
      if (acc.is_write()) os << "  k" << k << " -> a" << acc.array << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace kf
