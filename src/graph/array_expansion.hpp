// Expandable-array relaxation (paper §II-B.1c).
//
// An "expandable read-write" array has several writer kernels: each write
// generation imposes WAR/WAW precedences that needlessly serialise kernels
// (e.g. QFLX in Fig. 1, written by K_8 then rewritten by K_12). The paper
// relaxes these precedences by introducing redundant arrays — one per write
// generation — at the cost of extra device memory. This is SSA-style
// versioning at kernel granularity: a pure overwrite of an array whose
// current version already has a writer starts a fresh version; subsequent
// readers bind to the newest version.
//
// ReadWrite (accumulating) accesses depend on the previous contents and are
// never split. Kernel bodies, when present, are remapped alongside the
// access metadata so functional validation still works on the expanded
// program.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace kf {

struct ExpansionResult {
  Program program;           ///< the relaxed program
  int arrays_added = 0;      ///< number of redundant versions introduced
  double extra_bytes = 0.0;  ///< device memory cost of the redundancy

  /// versions[original_array] lists that array's versions in creation
  /// order; the front is the original id, the back holds the final value.
  std::vector<std::vector<ArrayId>> versions;

  /// Final version of an original array (identity if never split).
  ArrayId final_version(ArrayId original) const;
};

/// Applies the relaxation. The input program is not modified.
ExpansionResult expand_arrays(const Program& program);

/// Budgeted variant: redundant arrays cost device memory ("at the expense
/// of extra memory capacity", §II-B.1c), and real deployments cap it.
/// Split sites are ranked by precedence edges removed per byte and applied
/// greedily until `budget_bytes` is exhausted. A negative budget means
/// unlimited (equivalent to expand_arrays(program)).
ExpansionResult expand_arrays(const Program& program, double budget_bytes);

}  // namespace kf
