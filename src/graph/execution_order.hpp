// Order-of-execution graph (paper Fig. 2).
//
// A DAG over kernels whose edges are the inter-kernel precedences a fusion
// must not violate. It is built from the dependency edges of the (usually
// expanded) program. Fusion legality reduces to two queries implemented
// here with dense bitsets:
//  * must_precede(a, b)   — a path a -> b exists;
//  * group_is_convex(G)   — constraint (1.3): for every a, b in G, every
//    kernel on any path a -> b is also in G. Contracting convex groups of a
//    DAG always yields a DAG, so convexity alone guarantees the fused
//    program still has a valid execution order.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "graph/dependency_graph.hpp"
#include "ir/program.hpp"

namespace kf {

class ExecutionOrderGraph {
 public:
  static ExecutionOrderGraph build(const Program& program);
  static ExecutionOrderGraph build(const Program& program, const DependencyGraph& deps);

  int num_kernels() const noexcept { return dag_.size(); }
  const Dag& dag() const noexcept { return dag_; }

  /// True iff instructions of `a` must execute before those of `b`.
  bool must_precede(KernelId a, KernelId b) const noexcept;

  /// True iff some pair in the group has an execution-order constraint —
  /// i.e. fusing the group requires barriers ("complex fusion", §II-D.2).
  bool has_internal_precedence(std::span<const KernelId> group) const;

  /// Constraint (1.3): the group is path-closed under the precedence DAG.
  bool group_is_convex(std::span<const KernelId> group) const;

  /// Kernels strictly between a and b on some path (empty when none).
  std::vector<KernelId> kernels_between(KernelId a, KernelId b) const;

  /// A topological order of the kernels (deterministic).
  std::vector<KernelId> topological_order() const;

  /// Graphviz rendering of the transitive reduction (Fig.-2 style).
  std::string to_dot(const Program& program) const;

 private:
  Dag dag_;
  BitMatrix reach_;   // reach_.get(a, b): path a -> b exists
};

}  // namespace kf
