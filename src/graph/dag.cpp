#include "graph/dag.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "util/error.hpp"

namespace kf {

BitMatrix::BitMatrix(int n) : n_(n), wpr_((n + 63) / 64) {
  KF_REQUIRE(n >= 0, "BitMatrix size must be non-negative");
  words_.assign(static_cast<std::size_t>(n_) * wpr_, 0);
}

bool BitMatrix::get(int row, int col) const noexcept {
  const std::size_t idx = static_cast<std::size_t>(row) * wpr_ + col / 64;
  return (words_[idx] >> (col % 64)) & 1u;
}

void BitMatrix::set(int row, int col) noexcept {
  const std::size_t idx = static_cast<std::size_t>(row) * wpr_ + col / 64;
  words_[idx] |= std::uint64_t{1} << (col % 64);
}

void BitMatrix::or_row(int dst, int src) noexcept {
  auto* d = &words_[static_cast<std::size_t>(dst) * wpr_];
  const auto* s = &words_[static_cast<std::size_t>(src) * wpr_];
  for (int w = 0; w < wpr_; ++w) d[w] |= s[w];
}

std::span<const std::uint64_t> BitMatrix::row(int r) const noexcept {
  return {&words_[static_cast<std::size_t>(r) * wpr_], static_cast<std::size_t>(wpr_)};
}

std::span<std::uint64_t> BitMatrix::row(int r) noexcept {
  return {&words_[static_cast<std::size_t>(r) * wpr_], static_cast<std::size_t>(wpr_)};
}

int BitMatrix::row_popcount(int r) const noexcept {
  int count = 0;
  for (std::uint64_t w : row(r)) count += std::popcount(w);
  return count;
}

Dag::Dag(int n) : n_(n), succ_(static_cast<std::size_t>(n)), pred_(static_cast<std::size_t>(n)) {
  KF_REQUIRE(n >= 0, "Dag size must be non-negative");
}

void Dag::check_vertex(int v) const {
  KF_REQUIRE(v >= 0 && v < n_, "vertex " << v << " out of range [0," << n_ << ")");
}

void Dag::add_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  KF_REQUIRE(u != v, "self-edge on vertex " << u);
  auto& s = succ_[static_cast<std::size_t>(u)];
  if (std::find(s.begin(), s.end(), v) != s.end()) return;
  s.push_back(v);
  pred_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

bool Dag::has_edge(int u, int v) const noexcept {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) return false;
  const auto& s = succ_[static_cast<std::size_t>(u)];
  return std::find(s.begin(), s.end(), v) != s.end();
}

const std::vector<int>& Dag::successors(int u) const {
  check_vertex(u);
  return succ_[static_cast<std::size_t>(u)];
}

const std::vector<int>& Dag::predecessors(int u) const {
  check_vertex(u);
  return pred_[static_cast<std::size_t>(u)];
}

std::vector<int> Dag::topological_order() const {
  std::vector<int> indegree(static_cast<std::size_t>(n_), 0);
  for (int u = 0; u < n_; ++u) {
    for (int v : succ_[static_cast<std::size_t>(u)]) {
      ++indegree[static_cast<std::size_t>(v)];
    }
  }
  // Min-heap for a deterministic order independent of insertion history.
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int v = 0; v < n_; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n_));
  while (!ready.empty()) {
    const int u = ready.top();
    ready.pop();
    order.push_back(u);
    for (int v : succ_[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
    }
  }
  KF_CHECK(static_cast<int>(order.size()) == n_, "graph contains a cycle");
  return order;
}

bool Dag::is_dag() const {
  try {
    (void)topological_order();
    return true;
  } catch (const RuntimeError&) {
    return false;
  }
}

BitMatrix Dag::reachability() const {
  const std::vector<int> order = topological_order();
  BitMatrix reach(n_);
  // Process in reverse topological order: u reaches succ(u) and everything
  // each successor reaches.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    for (int v : succ_[static_cast<std::size_t>(u)]) {
      reach.set(u, v);
      reach.or_row(u, v);
    }
  }
  return reach;
}

BitMatrix Dag::reverse_reachability() const {
  const BitMatrix fwd = reachability();
  BitMatrix rev(n_);
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      if (fwd.get(u, v)) rev.set(v, u);
    }
  }
  return rev;
}

Dag Dag::transitive_reduction() const {
  const BitMatrix reach = reachability();
  Dag reduced(n_);
  for (int u = 0; u < n_; ++u) {
    for (int v : succ_[static_cast<std::size_t>(u)]) {
      // u -> v is redundant if some other successor w of u reaches v.
      bool redundant = false;
      for (int w : succ_[static_cast<std::size_t>(u)]) {
        if (w != v && reach.get(w, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) reduced.add_edge(u, v);
    }
  }
  return reduced;
}

}  // namespace kf
