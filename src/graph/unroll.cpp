#include "graph/unroll.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace kf {

Program unroll_timesteps(const Program& program, int steps) {
  KF_REQUIRE(steps >= 1, "steps must be positive");
  program.validate();

  int phases_per_step = 0;
  for (const KernelInfo& k : program.kernels()) {
    phases_per_step = std::max(phases_per_step, k.phase + 1);
  }

  Program out(program.name() + strprintf("+x%d", steps), program.grid(),
              program.launch());
  for (const ArrayInfo& a : program.arrays()) out.add_array(a);

  for (int step = 0; step < steps; ++step) {
    for (const KernelInfo& kernel : program.kernels()) {
      KernelInfo copy = kernel;
      if (step > 0) copy.name = strprintf("%s@s%d", kernel.name.c_str(), step + 1);
      copy.phase = kernel.phase + step * phases_per_step;
      out.add_kernel(std::move(copy));
    }
  }
  out.validate();
  return out;
}

}  // namespace kf
