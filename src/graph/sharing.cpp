#include "graph/sharing.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "util/error.hpp"

namespace kf {

SharingGraph SharingGraph::build(const Program& program) {
  SharingGraph g;
  const auto nk = static_cast<std::size_t>(program.num_kernels());
  const auto na = static_cast<std::size_t>(program.num_arrays());
  g.adj_.assign(nk, {});
  g.array_kernels_.assign(na, {});

  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    for (const ArrayAccess& acc : program.kernel(k).accesses) {
      g.array_kernels_[static_cast<std::size_t>(acc.array)].push_back(k);
    }
  }
  std::vector<std::set<KernelId>> adj_sets(nk);
  for (const auto& ks : g.array_kernels_) {
    for (std::size_t i = 0; i < ks.size(); ++i) {
      for (std::size_t j = i + 1; j < ks.size(); ++j) {
        adj_sets[static_cast<std::size_t>(ks[i])].insert(ks[j]);
        adj_sets[static_cast<std::size_t>(ks[j])].insert(ks[i]);
      }
    }
  }
  for (std::size_t k = 0; k < nk; ++k) {
    g.adj_[k].assign(adj_sets[k].begin(), adj_sets[k].end());
  }
  return g;
}

const std::vector<KernelId>& SharingGraph::sharing_set(ArrayId array) const {
  KF_REQUIRE(array >= 0 && array < static_cast<ArrayId>(array_kernels_.size()),
             "array id out of range");
  return array_kernels_[static_cast<std::size_t>(array)];
}

std::vector<ArrayId> SharingGraph::shared_arrays() const {
  std::vector<ArrayId> out;
  for (std::size_t a = 0; a < array_kernels_.size(); ++a) {
    if (array_kernels_[a].size() >= 2) out.push_back(static_cast<ArrayId>(a));
  }
  return out;
}

std::vector<ArrayId> SharingGraph::shared_within(std::span<const KernelId> group) const {
  std::vector<char> in_group(adj_.size(), 0);
  for (KernelId k : group) in_group[static_cast<std::size_t>(k)] = 1;
  std::vector<ArrayId> out;
  for (std::size_t a = 0; a < array_kernels_.size(); ++a) {
    int touches = 0;
    for (KernelId k : array_kernels_[a]) {
      if (in_group[static_cast<std::size_t>(k)] && ++touches >= 2) break;
    }
    if (touches >= 2) out.push_back(static_cast<ArrayId>(a));
  }
  return out;
}

bool SharingGraph::direct_share(KernelId a, KernelId b) const {
  KF_REQUIRE(a >= 0 && a < num_kernels() && b >= 0 && b < num_kernels(),
             "kernel id out of range");
  const auto& n = adj_[static_cast<std::size_t>(a)];
  return std::find(n.begin(), n.end(), b) != n.end();
}

int SharingGraph::kinship(KernelId a, KernelId b) const {
  KF_REQUIRE(a >= 0 && a < num_kernels() && b >= 0 && b < num_kernels(),
             "kernel id out of range");
  if (a == b) return 0;
  // BFS shortest chain in the sharing graph.
  std::vector<int> dist(adj_.size(), -1);
  std::queue<KernelId> frontier;
  dist[static_cast<std::size_t>(a)] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    const KernelId u = frontier.front();
    frontier.pop();
    for (KernelId v : adj_[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(v)] == -1) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        if (v == b) return dist[static_cast<std::size_t>(v)];
        frontier.push(v);
      }
    }
  }
  return 0;  // disconnected
}

bool SharingGraph::group_connected(std::span<const KernelId> group) const {
  if (group.size() <= 1) return true;
  std::vector<char> in_group(adj_.size(), 0);
  for (KernelId k : group) {
    KF_REQUIRE(k >= 0 && k < num_kernels(), "kernel id " << k << " out of range");
    in_group[static_cast<std::size_t>(k)] = 1;
  }
  std::vector<char> seen(adj_.size(), 0);
  std::queue<KernelId> frontier;
  frontier.push(group[0]);
  seen[static_cast<std::size_t>(group[0])] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const KernelId u = frontier.front();
    frontier.pop();
    for (KernelId v : adj_[static_cast<std::size_t>(u)]) {
      if (in_group[static_cast<std::size_t>(v)] && !seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == group.size();
}

const std::vector<KernelId>& SharingGraph::neighbours(KernelId k) const {
  KF_REQUIRE(k >= 0 && k < num_kernels(), "kernel id out of range");
  return adj_[static_cast<std::size_t>(k)];
}

}  // namespace kf
