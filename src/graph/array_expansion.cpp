#include "graph/array_expansion.hpp"
#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace kf {

ArrayId ExpansionResult::final_version(ArrayId original) const {
  KF_REQUIRE(original >= 0 && original < static_cast<ArrayId>(versions.size()),
             "array id out of range");
  return versions[static_cast<std::size_t>(original)].back();
}

namespace {

/// A potential split site: kernel `writer` pure-overwrites `array` whose
/// current version already has a writer. `benefit` counts the WAR/WAW
/// precedence edges the redundant array would remove.
struct SplitSite {
  KernelId writer = kInvalidKernel;
  ArrayId array = kInvalidArray;
  int benefit = 0;
  double bytes = 0.0;
};

std::vector<SplitSite> enumerate_split_sites(const Program& program) {
  const int na = program.num_arrays();
  std::vector<KernelId> last_writer(static_cast<std::size_t>(na), kInvalidKernel);
  std::vector<int> readers_since(static_cast<std::size_t>(na), 0);
  std::vector<SplitSite> sites;
  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    for (const ArrayAccess& acc : program.kernel(k).accesses) {
      const auto ai = static_cast<std::size_t>(acc.array);
      if (acc.is_read() && !acc.reads_own_product) ++readers_since[ai];
      if (acc.mode == AccessMode::Write) {
        if (last_writer[ai] != kInvalidKernel) {
          SplitSite site;
          site.writer = k;
          site.array = acc.array;
          site.benefit = readers_since[ai] + 1;  // WARs + the WAW
          site.bytes = program.array_bytes(acc.array);
          sites.push_back(site);
        }
        last_writer[ai] = k;
        readers_since[ai] = 0;
      } else if (acc.mode == AccessMode::ReadWrite) {
        last_writer[ai] = k;
      }
    }
  }
  return sites;
}

/// Core versioning pass. `allowed` (when non-null) restricts splitting to
/// the given (writer, array) sites.
ExpansionResult expand_arrays_impl(const Program& program,
                                   const std::set<std::pair<KernelId, ArrayId>>* allowed) {
  program.validate();

  ExpansionResult result;
  Program out(program.name(), program.grid(), program.launch());
  const int na = program.num_arrays();

  result.versions.resize(static_cast<std::size_t>(na));
  for (ArrayId a = 0; a < na; ++a) {
    const ArrayId id = out.add_array(program.array(a));
    KF_CHECK(id == a, "array ids must be stable under copy");
    result.versions[static_cast<std::size_t>(a)] = {a};
  }

  // Per original array: current version id and whether that version has a
  // writer already.
  std::vector<ArrayId> current(static_cast<std::size_t>(na));
  std::vector<int> writer_count(static_cast<std::size_t>(na), 0);
  for (ArrayId a = 0; a < na; ++a) current[static_cast<std::size_t>(a)] = a;

  // Map from any version id back to its original array (extended as
  // versions are created). Only original ids appear in input accesses.
  auto version_map = [&](ArrayId original) { return current[static_cast<std::size_t>(original)]; };

  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    const KernelInfo& kin = program.kernel(k);

    // Pass 1: pure overwrites of an already-written array open a new
    // version (the "redundant array").
    for (const ArrayAccess& acc : kin.accesses) {
      if (acc.mode != AccessMode::Write) continue;
      if (allowed != nullptr && !allowed->contains({k, acc.array})) continue;
      const auto orig = static_cast<std::size_t>(acc.array);
      if (writer_count[orig] > 0) {
        ArrayInfo info = program.array(acc.array);
        const int generation =
            static_cast<int>(result.versions[orig].size()) + 1;
        info.name = strprintf("%s@%d", info.name.c_str(), generation);
        const ArrayId fresh = out.add_array(std::move(info));
        result.versions[orig].push_back(fresh);
        current[orig] = fresh;
        writer_count[orig] = 0;
        ++result.arrays_added;
        result.extra_bytes += program.array_bytes(acc.array);
      }
    }

    // Pass 2: remap the kernel's accesses and body to current versions.
    KernelInfo copy = kin;
    for (ArrayAccess& acc : copy.accesses) {
      const ArrayId original = acc.array;  // input accesses use original ids
      acc.array = version_map(original);
      if (acc.is_write()) ++writer_count[static_cast<std::size_t>(original)];
    }
    for (StencilStatement& stmt : copy.body) {
      stmt.out = version_map(stmt.out);
      stmt.expr = stmt.expr.with_remapped_arrays(
          [&](ArrayId a) { return version_map(a); });
    }
    out.add_kernel(std::move(copy));
  }

  out.validate();
  result.program = std::move(out);
  return result;
}

}  // namespace

ExpansionResult expand_arrays(const Program& program) {
  return expand_arrays_impl(program, nullptr);
}

ExpansionResult expand_arrays(const Program& program, double budget_bytes) {
  if (budget_bytes < 0.0) return expand_arrays(program);

  // Rank candidate splits by precedence edges removed per byte, then admit
  // greedily under the budget.
  std::vector<SplitSite> sites = enumerate_split_sites(program);
  std::sort(sites.begin(), sites.end(), [](const SplitSite& a, const SplitSite& b) {
    return static_cast<double>(a.benefit) / a.bytes >
           static_cast<double>(b.benefit) / b.bytes;
  });
  std::set<std::pair<KernelId, ArrayId>> allowed;
  double spent = 0.0;
  for (const SplitSite& site : sites) {
    if (spent + site.bytes > budget_bytes) continue;
    spent += site.bytes;
    allowed.insert({site.writer, site.array});
  }
  return expand_arrays_impl(program, &allowed);
}

}  // namespace kf
