// Sharing sets and degree of kinship (paper Table II).
//
// Two kernels are "kin" when a chain of pairwise array-sharing links them;
// the chain length minus one is the degree of kinship. Constraint (1.5)
// requires every pair inside a new kernel to have kinship > 0. For fusion
// to be *useful* (not just legal) the chain must run through the group's
// own members — fusing two kernels whose only kinship path runs through an
// outside kernel reuses nothing — so group_connected() checks connectivity
// of the induced subgraph, while kinship() reports the global chain length.
#pragma once

#include <span>
#include <vector>

#include "ir/program.hpp"

namespace kf {

class SharingGraph {
 public:
  static SharingGraph build(const Program& program);

  int num_kernels() const noexcept { return static_cast<int>(adj_.size()); }

  /// K(D): kernels touching array D, in invocation order.
  const std::vector<KernelId>& sharing_set(ArrayId array) const;

  /// All arrays with |K(D)| >= 2 ("shared arrays").
  std::vector<ArrayId> shared_arrays() const;

  /// Arrays shared by at least two kernels *within* the group — the
  /// candidate kernel pivot of a fusion of this group.
  std::vector<ArrayId> shared_within(std::span<const KernelId> group) const;

  /// True iff a and b directly share at least one array.
  bool direct_share(KernelId a, KernelId b) const;

  /// Degree of kinship: 1 for a direct share, chain length - 1 through the
  /// global sharing graph, 0 when disconnected (or a == b).
  int kinship(KernelId a, KernelId b) const;

  /// Connectivity of the subgraph induced by `group` (singletons: true).
  bool group_connected(std::span<const KernelId> group) const;

  const std::vector<KernelId>& neighbours(KernelId k) const;

 private:
  std::vector<std::vector<KernelId>> adj_;            // kernel -> kernels sharing an array
  std::vector<std::vector<KernelId>> array_kernels_;  // array -> kernels touching it
};

}  // namespace kf
