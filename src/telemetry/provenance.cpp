#include "telemetry/provenance.hpp"

#include <algorithm>

#include "telemetry/flight_recorder.hpp"
#include "util/error.hpp"

namespace kf {

const char* DecisionLog::to_string(Site site) noexcept {
  switch (site) {
    case Site::GreedyMerge: return "greedy_merge";
    case Site::GreedyReject: return "greedy_reject";
    case Site::CrossoverInject: return "crossover_inject";
    case Site::MutationMerge: return "mutation_merge";
    case Site::MutationSplit: return "mutation_split";
    case Site::MutationMove: return "mutation_move";
    case Site::PolishMerge: return "polish_merge";
    case Site::PolishMove: return "polish_move";
    case Site::PolishSplit: return "polish_split";
  }
  return "unknown";
}

bool DecisionLog::Decision::involves(KernelId k) const noexcept {
  const int held = std::min<int>(member_count, kMaxMembers);
  for (int i = 0; i < held; ++i)
    if (members[i] == k) return true;
  return false;
}

DecisionLog::DecisionLog(std::size_t capacity) : capacity_(capacity) {
  KF_REQUIRE(capacity_ > 0, "DecisionLog capacity must be positive");
  ring_.resize(capacity_);  // preallocated: record() never allocates
}

void DecisionLog::record(Site site, bool accepted,
                         std::span<const KernelId> members,
                         double cost_delta_s, const char* dominant) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision& d = ring_[next_seq_ % capacity_];
  d.seq = next_seq_++;
  d.site = site;
  d.accepted = accepted;
  d.member_count = static_cast<std::int16_t>(
      std::min<std::size_t>(members.size(), INT16_MAX));
  const std::size_t held = std::min<std::size_t>(members.size(), kMaxMembers);
  for (std::size_t i = 0; i < held; ++i) d.members[i] = members[i];
  for (std::size_t i = held; i < kMaxMembers; ++i) d.members[i] = kInvalidKernel;
  d.cost_delta_s = cost_delta_s;
  d.dominant = dominant == nullptr ? "" : dominant;
  d.trace = current_trace();  // 16-byte POD copy; still allocation-free
  if (recorder_ != nullptr)
    recorder_->record_decision(static_cast<int>(site), accepted, d.members,
                               d.member_count, cost_delta_s, d.dominant,
                               d.trace);
}

long DecisionLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<long>(next_seq_);
}

std::size_t DecisionLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(std::min<std::uint64_t>(next_seq_, capacity_));
}

long DecisionLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ > capacity_ ? static_cast<long>(next_seq_ - capacity_) : 0;
}

std::vector<DecisionLog::Decision> DecisionLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Decision> out;
  const std::uint64_t held = std::min<std::uint64_t>(next_seq_, capacity_);
  out.reserve(held);
  const std::uint64_t first = next_seq_ - held;
  for (std::uint64_t s = first; s < next_seq_; ++s)
    out.push_back(ring_[s % capacity_]);
  return out;
}

std::vector<DecisionLog::Decision> DecisionLog::involving(KernelId k) const {
  std::vector<Decision> all = snapshot();
  std::vector<Decision> out;
  for (const Decision& d : all)
    if (d.involves(k)) out.push_back(d);
  return out;
}

}  // namespace kf
