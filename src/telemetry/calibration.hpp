// CalibrationTracker — online projection-vs-simulator error statistics.
//
// The search runs on the analytic projection model; a 1-in-64 sample of
// fused cache misses is re-run through the timing simulator
// (Objective::maybe_sample_projection). This tracker promotes those samples
// into per-group-size-bucket error statistics — mean / percentile relative
// error and sign bias — instrumenting the paper's "projection is a sound
// upper bound" assumption continuously instead of leaving it to offline
// histogram reads.
//
// relative error = (projected - simulated) / simulated, so positive error
// means the projection over-estimates (the sound-upper-bound direction) and
// negative error means it under-estimates (the dangerous direction: the
// search may accept fusions the simulator would reject).
//
// Drift: once a bucket has `min_samples` samples and its |mean relative
// error| exceeds `drift_band`, the bucket latches a drift flag and record()
// reports it exactly once so the caller can emit a structured warning event.
// The latch is deliberate — "this run observed drift" stays visible in the
// final calibration block even if later samples pull the mean back.
//
// Statistics are exact (count/mean/extrema/sign counts); percentiles come
// from a bounded Algorithm-R reservoir per bucket, seeded deterministically
// like MetricsRegistry's histograms. All methods are thread-safe; recording
// never allocates once a bucket's reservoir is warm (reservoirs are
// preallocated up front).
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "telemetry/json.hpp"

namespace kf {

class CalibrationTracker {
 public:
  /// Group-size buckets: 2, 3, 4, 5-8, 9+ fused kernels. Singletons are
  /// never sampled (the projection is exact on them by construction).
  static constexpr int kBuckets = 5;
  static const char* bucket_label(int bucket) noexcept;
  static int bucket_of(std::size_t group_size) noexcept;

  struct Options {
    double drift_band = 1.0;  ///< |mean rel error| beyond this latches drift
    long min_samples = 16;    ///< bucket samples required before drift can latch
    std::size_t reservoir = 512;  ///< percentile reservoir per bucket
  };

  CalibrationTracker() : CalibrationTracker(Options{}) {}
  explicit CalibrationTracker(const Options& options);

  struct Drift {
    int bucket = 0;
    long count = 0;
    double mean_rel_error = 0.0;
  };

  /// Records one sample. Returns the drift descriptor when this sample
  /// first pushes its bucket beyond the band (at most once per bucket).
  std::optional<Drift> record(std::size_t group_size, double projected_s,
                              double simulated_s);

  struct BucketStats {
    const char* label = "";
    long count = 0;
    double mean_rel_error = 0.0;
    double mean_abs_rel_error = 0.0;
    double max_abs_rel_error = 0.0;
    double min_rel_error = 0.0;
    double max_rel_error = 0.0;
    double p50_rel_error = 0.0;
    double p90_abs_rel_error = 0.0;
    long overestimates = 0;   ///< projected > simulated (sound direction)
    long underestimates = 0;  ///< projected < simulated
    bool drift = false;

    /// (over - under) / count in [-1, 1]; +1 = always over-estimates.
    double sign_bias() const noexcept;
  };

  /// Per-bucket statistics; empty buckets are omitted.
  std::vector<BucketStats> stats() const;

  long samples() const;
  bool any_drift() const;
  double drift_band() const noexcept { return options_.drift_band; }

  /// The kfc-metrics/v2 "calibration" block.
  JsonValue to_json() const;

 private:
  struct Bucket {
    long count = 0;
    double sum = 0.0;
    double sum_abs = 0.0;
    double min = 0.0;
    double max = 0.0;
    long over = 0;
    long under = 0;
    bool drift = false;
    std::vector<double> reservoir;
    std::uint64_t lcg = 0;
  };

  const Options options_;
  mutable std::mutex mu_;
  Bucket buckets_[kBuckets];
};

}  // namespace kf
