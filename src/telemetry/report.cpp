#include "telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace kf {
namespace {

/// Component fields a "group_breakdown" event may carry, in display order.
constexpr const char* kBreakdownComponents[] = {
    "gmem_traffic_s", "halo_s", "latency_stall_s", "smem_s",
    "barrier_s",      "compute_s", "launch_s",
};

std::vector<long> members_of(const JsonValue& event) {
  std::vector<long> members;
  if (const JsonValue* m = event.find("members"); m != nullptr && m->is_array()) {
    for (const JsonValue& v : m->items()) members.push_back(v.as_long());
  }
  return members;
}

std::string members_text(const std::vector<long>& members) {
  std::string out = "{";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i) out += ',';
    out += strprintf("%ld", members[i]);
  }
  out += '}';
  return out;
}

/// 10-char ASCII bar scaled between lo (empty) and hi (full).
std::string bar(double value, double lo, double hi) {
  const int width = 10;
  double frac = hi > lo ? (value - lo) / (hi - lo) : 0.0;
  frac = std::clamp(frac, 0.0, 1.0);
  const int fill = static_cast<int>(std::lround(frac * width));
  return std::string(static_cast<std::size_t>(fill), '#') +
         std::string(static_cast<std::size_t>(width - fill), '.');
}

bool bool_or(const JsonValue& event, const char* key, bool fallback) {
  const JsonValue* v = event.find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

/// Linear-interpolation percentile over an already-sorted sample vector
/// (same convention as MetricsRegistry::HistogramSnapshot::percentile).
double pct_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

RunReport::ServeRungStats& rung_row(std::vector<RunReport::ServeRungStats>& rungs,
                                    const std::string& name) {
  for (RunReport::ServeRungStats& r : rungs) {
    if (r.rung == name) return r;
  }
  rungs.push_back(RunReport::ServeRungStats{});
  rungs.back().rung = name;
  return rungs.back();
}

}  // namespace

RunReport RunReport::from_files(const std::string& metrics_path,
                                const std::string& events_path) {
  RunReport report;
  if (!metrics_path.empty()) {
    std::ifstream in(metrics_path);
    KF_CHECK(static_cast<bool>(in), "cannot open metrics file '" << metrics_path << "'");
    std::ostringstream text;
    text << in.rdbuf();
    report.ingest_metrics(JsonValue::parse(text.str()));
  }
  if (!events_path.empty()) {
    std::ifstream in(events_path);
    KF_CHECK(static_cast<bool>(in), "cannot open events file '" << events_path << "'");
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (trim(line).empty()) continue;
      try {
        report.ingest_event(JsonValue::parse(line));
      } catch (const RuntimeError& e) {
        throw RuntimeError(strprintf("%s line %d: %s", events_path.c_str(),
                                     line_no, e.what()));
      }
    }
  }
  return report;
}

void RunReport::ingest_event(const JsonValue& event) {
  const std::string type = event.string_or("type", "");
  if (type == "search_start") {
    program = event.string_or("program", program);
    method = event.string_or("method", method);
    objective = event.string_or("objective", objective);
    device = event.string_or("device", device);
    baseline_cost_s = event.number_or("baseline_cost_s", baseline_cost_s);
  } else if (type == "generation") {
    GenerationSample s;
    s.generation = static_cast<long>(event.number_or("gen", 0));
    s.best_cost_s = event.number_or("best_cost_s", 0);
    s.mean_cost_s = event.number_or("mean_cost_s", 0);
    s.worst_cost_s = event.number_or("worst_cost_s", 0);
    s.distinct_plans = static_cast<long>(event.number_or("distinct_plans", 0));
    s.mean_groups = event.number_or("mean_groups", 0);
    s.evaluations = static_cast<long>(event.number_or("evaluations", 0));
    s.elapsed_s = event.number_or("ts", 0);
    convergence.push_back(s);
  } else if (type == "fault_quarantine") {
    Quarantine q;
    q.fingerprint = event.string_or("fingerprint", "");
    q.members = members_of(event);
    q.error = event.string_or("error", "");
    quarantines.push_back(std::move(q));
  } else if (type == "group_breakdown") {
    GroupRow row;
    row.name = event.string_or("name", "");
    row.members = members_of(event);
    row.total_s = event.number_or("total_s", 0);
    for (const char* component : kBreakdownComponents) {
      if (const JsonValue* v = event.find(component); v != nullptr && v->is_number()) {
        row.components.emplace_back(component, v->as_number());
      }
    }
    groups.push_back(std::move(row));
  } else if (type == "decision") {
    const std::string site = event.string_or("site", "?");
    DecisionCount* row = nullptr;
    for (DecisionCount& d : decisions) {
      if (d.site == site) {
        row = &d;
        break;
      }
    }
    if (row == nullptr) {
      decisions.push_back(DecisionCount{site, 0, 0});
      row = &decisions.back();
    }
    const bool accepted = [&] {
      const JsonValue* a = event.find("accepted");
      return a != nullptr && a->is_bool() && a->as_bool();
    }();
    if (accepted) {
      ++row->accepted;
      accepted_cost_delta_s += event.number_or("cost_delta_s", 0.0);
    } else {
      ++row->rejected;
    }
    ++decisions_total;
  } else if (type == "calibration_drift") {
    drift_warnings.push_back(strprintf(
        "group size %s: mean rel error %+.3f beyond band %.3f after %ld samples",
        event.string_or("bucket", "?").c_str(),
        event.number_or("mean_rel_error", 0.0), event.number_or("band", 0.0),
        static_cast<long>(event.number_or("samples", 0))));
  } else if (type == "checkpoint_save") {
    ++checkpoint_saves;
  } else if (type == "checkpoint_resume") {
    resumed = true;
  } else if (type == "serve_request") {
    // The per-request wide event: one line per served request carrying the
    // rung taken, latency, deadline budget state and the owning trace id.
    has_serve = true;
    ++serve_wide_events;
    ServeRungStats& row = rung_row(serve_rungs, event.string_or("rung", "?"));
    row.latencies_s.push_back(event.number_or("latency_s", 0.0));
    if (!bool_or(event, "deadline_met", true)) {
      ++row.deadline_misses;
      ++serve_event_misses;
    }
    if (bool_or(event, "degraded", false)) ++serve_event_degraded;
    if (!event.string_or("trace", "").empty()) {
      ++serve_traced;
      ++row.traced;
    }
    if (event.number_or("deadline_s", 0.0) > 0.0) {
      row.has_headroom = true;
      row.worst_headroom = std::min(
          row.worst_headroom, 1.0 - event.number_or("deadline_frac_used", 0.0));
    }
  } else if (type == "search_end") {
    has_summary = true;
    stop_reason = event.string_or("stop_reason", stop_reason);
    best_cost_s = event.number_or("best_cost_s", best_cost_s);
    baseline_cost_s = event.number_or("baseline_cost_s", baseline_cost_s);
    runtime_s = event.number_or("runtime_s", runtime_s);
    generations = static_cast<long>(event.number_or("generations", 0));
    evaluations = static_cast<long>(event.number_or("evaluations", 0));
    faults = static_cast<long>(event.number_or("faults", 0));
  }
  // Unknown event types are skipped: the schema is forward-extensible.
}

void RunReport::ingest_metrics(const JsonValue& metrics) {
  if (const JsonValue* cal = metrics.find("calibration"); cal != nullptr) {
    has_calibration = true;
    calibration_drift_band = cal->number_or("drift_band", 0.0);
    calibration_samples = static_cast<long>(cal->number_or("samples", 0));
    if (const JsonValue* buckets = cal->find("buckets");
        buckets != nullptr && buckets->is_array()) {
      for (const JsonValue& b : buckets->items()) {
        CalibrationBucket row;
        row.group_size = b.string_or("group_size", "?");
        row.count = static_cast<long>(b.number_or("count", 0));
        row.mean_rel_error = b.number_or("mean_rel_error", 0.0);
        row.p90_abs_rel_error = b.number_or("p90_abs_rel_error", 0.0);
        row.sign_bias = b.number_or("sign_bias", 0.0);
        const JsonValue* drift = b.find("drift");
        row.drift = drift != nullptr && drift->is_bool() && drift->as_bool();
        calibration.push_back(std::move(row));
      }
    }
  }
  if (const JsonValue* counters = metrics.find("counters");
      counters != nullptr && counters->is_array()) {
    for (const JsonValue& c : counters->items()) {
      const std::string name = c.string_or("name", "");
      const long value = static_cast<long>(c.number_or("value", 0.0));
      static const std::string kRungPrefix = "serve.rung_total.";
      if (!name.starts_with("serve.") && !name.starts_with("store.")) continue;
      has_serve = true;
      if (name == "serve.requests_total") {
        serve_requests = value;
      } else if (name == "serve.deadline_missed_total") {
        serve_deadline_misses = value;
      } else if (name == "serve.degraded_total") {
        serve_degraded = value;
      } else if (name == "serve.queued_total") {
        serve_queued = value;
      } else if (name == "serve.admission_rejected_total") {
        serve_rejected = value;
      } else if (name == "serve.retries_total") {
        serve_retries = value;
      } else if (name.starts_with(kRungPrefix)) {
        rung_row(serve_rungs, name.substr(kRungPrefix.size())).counter_requests =
            value;
      } else {
        serving_counters.emplace_back(name, value);
      }
    }
  }
  if (const JsonValue* hists = metrics.find("histograms");
      hists != nullptr && hists->is_array()) {
    for (const JsonValue& h : hists->items()) {
      if (h.string_or("name", "") != "serve.latency_seconds") continue;
      has_serve = true;
      has_serve_latency = true;
      serve_latency_count = static_cast<long>(h.number_or("count", 0.0));
      serve_latency_mean = h.number_or("mean", 0.0);
      serve_latency_p50 = h.number_or("p50", 0.0);
      serve_latency_p90 = h.number_or("p90", 0.0);
      serve_latency_p99 = h.number_or("p99", 0.0);
      serve_latency_max = h.number_or("max", 0.0);
    }
  }
  if (const JsonValue* slo_block = metrics.find("slo"); slo_block != nullptr) {
    slo = SloTracker::from_json(*slo_block);
    has_slo = true;
  }
  const JsonValue* run = metrics.find("run");
  if (run == nullptr) return;
  has_summary = true;
  program = run->string_or("program", program);
  method = run->string_or("method", method);
  objective = run->string_or("objective", objective);
  device = run->string_or("device", device);
  stop_reason = run->string_or("stop_reason", stop_reason);
  best_cost_s = run->number_or("best_cost_s", best_cost_s);
  baseline_cost_s = run->number_or("baseline_cost_s", baseline_cost_s);
  runtime_s = run->number_or("runtime_s", runtime_s);
  generations = static_cast<long>(run->number_or("generations", generations));
  evaluations = static_cast<long>(run->number_or("evaluations", evaluations));
  faults = static_cast<long>(run->number_or("faults", faults));
  cache_hit_rate = run->number_or("cache_hit_rate", cache_hit_rate);
  cache_hits = static_cast<long>(run->number_or("cache_hits", cache_hits));
  cache_misses = static_cast<long>(run->number_or("cache_misses", cache_misses));
  cache_incremental_hits = static_cast<long>(
      run->number_or("cache_incremental_hits", cache_incremental_hits));
  cache_duplicate_misses = static_cast<long>(
      run->number_or("cache_duplicate_misses", cache_duplicate_misses));
  cache_shard_contention = static_cast<long>(
      run->number_or("cache_shard_contention", cache_shard_contention));
  delta_hits = static_cast<long>(run->number_or("delta_hits", delta_hits));
  delta_full_recosts =
      static_cast<long>(run->number_or("delta_full_recosts", delta_full_recosts));
  delta_mismatches =
      static_cast<long>(run->number_or("delta_mismatches", delta_mismatches));
}

std::string RunReport::render(int top_k) const {
  std::ostringstream os;

  // ---- run header ----
  os << "run: " << (program.empty() ? "?" : program);
  if (!method.empty()) os << " (" << method;
  if (!objective.empty()) os << "/" << objective;
  if (!device.empty()) os << " on " << device;
  if (!method.empty()) os << ")";
  os << "\n";
  if (has_summary) {
    os << "stop reason: " << (stop_reason.empty() ? "?" : stop_reason) << "  ("
       << generations << " generations, " << evaluations << " evaluations, "
       << human_time(runtime_s) << ")\n";
    os << "best cost: " << human_time(best_cost_s) << "  baseline "
       << human_time(baseline_cost_s) << "  projected speedup "
       << fixed(projected_speedup(), 2) << "x\n";
    if (faults > 0) os << "faults quarantined: " << faults << "\n";
    if (cache_hit_rate >= 0.0) {
      os << "evaluation cache: " << fixed(100.0 * cache_hit_rate, 2)
         << "% hit rate (" << cache_hits << " hits / " << cache_misses
         << " model evaluations";
      if (cache_incremental_hits > 0) {
        os << ", " << cache_incremental_hits << " memo-resolved";
      }
      if (cache_duplicate_misses > 0) {
        os << ", " << cache_duplicate_misses << " duplicate computes";
      }
      os << ")\n";
    }
    if (delta_hits > 0 || delta_full_recosts > 0) {
      os << "delta costing: " << delta_hits << " merge moves resolved incrementally, "
         << delta_full_recosts << " cold recosts";
      if (delta_mismatches > 0) {
        os << ", " << delta_mismatches << " CROSS-CHECK MISMATCHES";
      }
      os << "\n";
    }
    if (resumed) os << "resumed from checkpoint\n";
    if (checkpoint_saves > 0) os << "checkpoints written: " << checkpoint_saves << "\n";
  }

  // ---- convergence curve ----
  if (!convergence.empty()) {
    os << "\nconvergence (" << convergence.size() << " generations):\n";
    double lo = convergence.front().best_cost_s;
    double hi = lo;
    for (const GenerationSample& s : convergence) {
      lo = std::min(lo, s.best_cost_s);
      hi = std::max(hi, s.best_cost_s);
    }
    TextTable table({"gen", "best", "", "mean", "diversity", "launches", "evals"});
    const std::size_t max_rows = 20;
    const std::size_t stride = (convergence.size() + max_rows - 1) / max_rows;
    for (std::size_t i = 0; i < convergence.size(); ++i) {
      // Keep every stride-th row plus the last (the converged state).
      if (i % stride != 0 && i + 1 != convergence.size()) continue;
      const GenerationSample& s = convergence[i];
      table.add(s.generation, human_time(s.best_cost_s),
                bar(s.best_cost_s, lo, hi), human_time(s.mean_cost_s),
                s.distinct_plans, fixed(s.mean_groups, 1), s.evaluations);
    }
    os << table;
  }

  // ---- fault clusters ----
  if (!quarantines.empty()) {
    os << "\nquarantined faults (" << quarantines.size() << " groups):\n";
    TextTable table({"fingerprint", "members", "error"});
    const std::size_t shown = std::min<std::size_t>(quarantines.size(),
                                                    static_cast<std::size_t>(top_k));
    for (std::size_t i = 0; i < shown; ++i) {
      const Quarantine& q = quarantines[i];
      table.add(q.fingerprint, members_text(q.members), q.error);
    }
    os << table;
    if (shown < quarantines.size()) {
      os << "  ... " << quarantines.size() - shown << " more\n";
    }
    // Cluster: which kernels keep appearing in faulting groups?
    std::map<long, int> implicated;
    for (const Quarantine& q : quarantines) {
      for (long k : q.members) ++implicated[k];
    }
    std::vector<std::pair<long, int>> ranked(implicated.begin(), implicated.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    os << "fault clusters (kernel: faulting groups containing it):";
    const std::size_t top = std::min<std::size_t>(ranked.size(), 6);
    for (std::size_t i = 0; i < top; ++i) {
      os << (i ? ", " : " ") << "k" << ranked[i].first << ": " << ranked[i].second;
    }
    os << "\n";
  }

  // ---- top-k groups by predicted-time component ----
  if (!groups.empty()) {
    std::vector<const GroupRow*> ranked;
    ranked.reserve(groups.size());
    for (const GroupRow& g : groups) ranked.push_back(&g);
    std::sort(ranked.begin(), ranked.end(), [](const GroupRow* a, const GroupRow* b) {
      return a->total_s > b->total_s;
    });
    const std::size_t shown =
        std::min<std::size_t>(ranked.size(), static_cast<std::size_t>(top_k));
    os << "\ntop " << shown << " of " << ranked.size()
       << " groups by predicted time (component share of total):\n";
    std::vector<std::string> headers = {"group", "members", "time"};
    for (const char* component : kBreakdownComponents) {
      std::string h(component);
      if (h.size() > 2 && h.ends_with("_s")) h.resize(h.size() - 2);
      headers.push_back(h);
    }
    TextTable table(std::move(headers));
    for (std::size_t i = 0; i < shown; ++i) {
      const GroupRow& g = *ranked[i];
      std::vector<std::string> row = {g.name, members_text(g.members),
                                      human_time(g.total_s)};
      for (const char* component : kBreakdownComponents) {
        double value = 0.0;
        for (const auto& [name, v] : g.components) {
          if (name == component) value = v;
        }
        row.push_back(g.total_s > 0.0 ? fixed(100.0 * value / g.total_s, 1) + "%"
                                      : "-");
      }
      table.add_row(std::move(row));
    }
    os << table;
  }

  // ---- fusion decision provenance ----
  if (!decisions.empty()) {
    os << "\nfusion decisions (" << decisions_total << " recorded, accepted "
       << "delta " << strprintf("%+.3e", accepted_cost_delta_s) << " s):\n";
    TextTable table({"site", "accepted", "rejected"});
    for (const DecisionCount& d : decisions) {
      table.add(d.site, d.accepted, d.rejected);
    }
    os << table;
  }

  // ---- serving: totals, per-rung latency percentiles, SLO burn ----
  if (has_serve) {
    const bool from_counters = serve_requests > 0;
    const long requests = from_counters ? serve_requests : serve_wide_events;
    const long misses = from_counters ? serve_deadline_misses : serve_event_misses;
    const long degraded = from_counters ? serve_degraded : serve_event_degraded;
    os << "\nserving: " << requests << " requests, " << misses
       << " deadline misses, " << degraded << " degraded";
    if (serve_queued > 0) os << ", " << serve_queued << " queued";
    if (serve_rejected > 0) os << ", " << serve_rejected << " rejected";
    if (serve_retries > 0) os << ", " << serve_retries << " retries";
    os << "\n";
    if (has_serve_latency) {
      os << "latency histogram: " << serve_latency_count << " samples, mean "
         << human_time(serve_latency_mean) << ", p50 "
         << human_time(serve_latency_p50) << ", p90 "
         << human_time(serve_latency_p90) << ", p99 "
         << human_time(serve_latency_p99) << ", max "
         << human_time(serve_latency_max) << "\n";
    }
    if (!serve_rungs.empty()) {
      if (serve_wide_events > 0) {
        os << "per-rung latency (" << serve_wide_events << " wide events, "
           << serve_traced << " traced):\n";
        TextTable table({"rung", "requests", "p50", "p95", "p99", "misses",
                         "min headroom"});
        for (const ServeRungStats& r : serve_rungs) {
          std::vector<double> sorted = r.latencies_s;
          std::sort(sorted.begin(), sorted.end());
          const long n = r.counter_requests > 0
                             ? r.counter_requests
                             : static_cast<long>(sorted.size());
          table.add(r.rung, n, human_time(pct_sorted(sorted, 50)),
                    human_time(pct_sorted(sorted, 95)),
                    human_time(pct_sorted(sorted, 99)), r.deadline_misses,
                    r.has_headroom ? fixed(100.0 * r.worst_headroom, 1) + "%"
                                   : "-");
        }
        os << table;
      } else {
        // Metrics only: the rung distribution without per-request latencies.
        TextTable table({"rung", "requests"});
        for (const ServeRungStats& r : serve_rungs) {
          table.add(r.rung, r.counter_requests);
        }
        os << table;
      }
    }
    if (!serving_counters.empty()) {
      os << "serving counters:";
      for (std::size_t i = 0; i < serving_counters.size(); ++i) {
        os << (i ? ", " : " ") << serving_counters[i].first << " "
           << serving_counters[i].second;
      }
      os << "\n";
    }
  }
  if (has_slo) os << "\n" << slo.render();

  // ---- projection calibration ----
  if (has_calibration) {
    os << "\nprojection calibration (" << calibration_samples
       << " samples, drift band " << fixed(calibration_drift_band, 3) << "):\n";
    if (calibration.empty()) {
      os << "  (no fused cache misses were sampled)\n";
    } else {
      TextTable table({"group size", "samples", "mean rel err", "p90 |rel err|",
                       "sign bias", "drift"});
      for (const CalibrationBucket& b : calibration) {
        table.add(b.group_size, b.count, strprintf("%+.4f", b.mean_rel_error),
                  fixed(b.p90_abs_rel_error, 4), strprintf("%+.2f", b.sign_bias),
                  b.drift ? "DRIFT" : "ok");
      }
      os << table;
    }
  }
  for (const std::string& warning : drift_warnings) {
    os << "calibration drift: " << warning << "\n";
  }

  if (!has_summary && convergence.empty() && groups.empty() &&
      quarantines.empty() && decisions.empty() && !has_calibration &&
      !has_serve && !has_slo) {
    os << "(no recognised telemetry in the given files)\n";
  }
  return os.str();
}

JsonValue RunReport::to_json() const {
  JsonValue root = JsonValue::object();
  JsonValue run = JsonValue::object();
  run.set("program", program);
  run.set("method", method);
  run.set("objective", objective);
  run.set("device", device);
  run.set("stop_reason", stop_reason);
  run.set("best_cost_s", best_cost_s);
  run.set("baseline_cost_s", baseline_cost_s);
  run.set("projected_speedup", projected_speedup());
  run.set("runtime_s", runtime_s);
  run.set("generations", generations);
  run.set("evaluations", evaluations);
  run.set("faults", faults);
  if (cache_hit_rate >= 0.0) {
    run.set("cache_hit_rate", cache_hit_rate);
    run.set("cache_hits", cache_hits);
    run.set("cache_misses", cache_misses);
    run.set("cache_incremental_hits", cache_incremental_hits);
    run.set("cache_duplicate_misses", cache_duplicate_misses);
    run.set("cache_shard_contention", cache_shard_contention);
  }
  if (delta_hits > 0 || delta_full_recosts > 0 || delta_mismatches > 0) {
    run.set("delta_hits", delta_hits);
    run.set("delta_full_recosts", delta_full_recosts);
    run.set("delta_mismatches", delta_mismatches);
  }
  root.set("run", std::move(run));

  JsonValue curve = JsonValue::array();
  for (const GenerationSample& s : convergence) {
    JsonValue g = JsonValue::object();
    g.set("gen", s.generation);
    g.set("best_cost_s", s.best_cost_s);
    g.set("mean_cost_s", s.mean_cost_s);
    g.set("distinct_plans", s.distinct_plans);
    curve.push_back(std::move(g));
  }
  root.set("convergence", std::move(curve));
  root.set("quarantined_groups", static_cast<long>(quarantines.size()));
  root.set("group_breakdowns", static_cast<long>(groups.size()));

  if (!decisions.empty()) {
    JsonValue sites = JsonValue::array();
    for (const DecisionCount& d : decisions) {
      JsonValue s = JsonValue::object();
      s.set("site", d.site);
      s.set("accepted", d.accepted);
      s.set("rejected", d.rejected);
      sites.push_back(std::move(s));
    }
    JsonValue block = JsonValue::object();
    block.set("total", decisions_total);
    block.set("accepted_cost_delta_s", accepted_cost_delta_s);
    block.set("sites", std::move(sites));
    root.set("decisions", std::move(block));
  }
  if (has_calibration) {
    JsonValue block = JsonValue::object();
    block.set("samples", calibration_samples);
    block.set("drift_band", calibration_drift_band);
    block.set("drift_warnings", static_cast<long>(drift_warnings.size()));
    JsonValue buckets = JsonValue::array();
    for (const CalibrationBucket& b : calibration) {
      JsonValue row = JsonValue::object();
      row.set("group_size", b.group_size);
      row.set("count", b.count);
      row.set("mean_rel_error", b.mean_rel_error);
      row.set("sign_bias", b.sign_bias);
      row.set("drift", b.drift);
      buckets.push_back(std::move(row));
    }
    block.set("buckets", std::move(buckets));
    root.set("calibration", std::move(block));
  }
  if (has_serve) {
    JsonValue block = JsonValue::object();
    block.set("requests", serve_requests > 0 ? serve_requests : serve_wide_events);
    block.set("deadline_misses",
              serve_requests > 0 ? serve_deadline_misses : serve_event_misses);
    block.set("degraded",
              serve_requests > 0 ? serve_degraded : serve_event_degraded);
    block.set("queued", serve_queued);
    block.set("rejected", serve_rejected);
    block.set("retries", serve_retries);
    block.set("wide_events", serve_wide_events);
    block.set("traced", serve_traced);
    JsonValue rungs = JsonValue::array();
    for (const ServeRungStats& r : serve_rungs) {
      JsonValue row = JsonValue::object();
      row.set("rung", r.rung);
      row.set("requests", r.counter_requests > 0
                              ? r.counter_requests
                              : static_cast<long>(r.latencies_s.size()));
      row.set("deadline_misses", r.deadline_misses);
      row.set("traced", r.traced);
      if (!r.latencies_s.empty()) {
        std::vector<double> sorted = r.latencies_s;
        std::sort(sorted.begin(), sorted.end());
        row.set("p50_s", pct_sorted(sorted, 50));
        row.set("p95_s", pct_sorted(sorted, 95));
        row.set("p99_s", pct_sorted(sorted, 99));
      }
      if (r.has_headroom) row.set("min_headroom", r.worst_headroom);
      rungs.push_back(std::move(row));
    }
    block.set("rungs", std::move(rungs));
    root.set("serve", std::move(block));
  }
  if (has_slo) root.set("slo", slo.to_json());
  return root;
}

}  // namespace kf
