// Prometheus text-format exposition over MetricsRegistry.
//
// Renders the whole registry as an OpenMetrics-compatible text document so
// long-running serve processes have a scrape-able (or node-exporter
// textfile-collector-able) metrics surface:
//
//   * counters  -> `# TYPE kf_serve_requests_total counter` + one sample
//   * gauges    -> gauge samples
//   * histograms with explicit buckets (MetricsRegistry::declare_buckets)
//     -> cumulative `_bucket{le="..."}` series, `_sum`, `_count`, with the
//     implicit `+Inf` bucket always present; buckets that hold a trace-id
//     exemplar append the OpenMetrics exemplar form
//         ` # {trace_id="<32 hex>"} <value>`
//     linking the scrape surface to individual request traces.
//   * histograms without explicit buckets -> `_sum`/`_count` plus the lone
//     `+Inf` bucket (still a valid histogram).
//
// Naming convention (documented in README "Observability v3"): metric names
// are prefixed `kf_` and every character outside [a-zA-Z0-9_:] becomes
// `_`, so `serve.latency_seconds` exports as `kf_serve_latency_seconds`.
// Labels pass through with values escaped per the exposition format. The
// document ends with `# EOF` (OpenMetrics terminator).
//
// prometheus_write_file commits via write -> atomic rename (util/fs_io),
// so a scraper or `kfc top` reading mid-run never sees a torn document —
// the pattern for continuous export during long serve-batch runs.
#pragma once

#include <string>

namespace kf {

class MetricsRegistry;

/// Canonical exposition name for a registry metric name ("serve.latency"
/// -> "kf_serve_latency").
std::string prometheus_name(const std::string& name);

/// Renders the full exposition document (ends with "# EOF\n").
std::string prometheus_render(const MetricsRegistry& metrics);

/// Renders and atomically replaces `path` (write tmp -> rename). Throws
/// kf::StoreError on I/O failure.
void prometheus_write_file(const MetricsRegistry& metrics,
                           const std::string& path);

}  // namespace kf
