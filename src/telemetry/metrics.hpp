// MetricsRegistry — thread-safe counters, gauges and histograms with
// labeled series.
//
// The registry is the numeric half of the telemetry layer (the trace log
// is the event half): search loops, the objective and the CLI record
// monotonic counters ("objective.evaluations"), last-value gauges
// ("search.best_cost_s") and sample distributions
// ("objective.eval_seconds") against it, and the whole registry renders to
// one JSON document (`kfc --metrics FILE`, schema documented in the README
// "Observability" section).
//
// A series is (name, labels); labels are sorted on registration so
// {kind=a, site=b} and {site=b, kind=a} are the same series. Histograms
// keep exact count/sum/min/max plus a bounded deterministic reservoir
// (Vitter's algorithm R with a fixed-seed LCG) for percentile estimates,
// so unbounded runs cannot grow memory without bound while short runs
// (fewer samples than the reservoir) get exact percentiles.
//
// All mutators are thread-safe (one registry mutex — the instrumented
// paths record at generation/evaluation granularity, not per-instruction).
// Disabled telemetry never reaches the registry: callers hold a nullable
// pointer and skip the call entirely, which keeps the overhead of a
// disabled build at one branch.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace kf {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  /// Reservoir capacity for histogram percentile estimation.
  static constexpr std::size_t kReservoirCapacity = 4096;

  // ---- recording ----
  void count(std::string_view name, long delta = 1, const MetricLabels& labels = {});
  void gauge(std::string_view name, double value, const MetricLabels& labels = {});
  void observe(std::string_view name, double sample, const MetricLabels& labels = {});

  // ---- reading (snapshots) ----
  long counter_value(std::string_view name, const MetricLabels& labels = {}) const;
  double gauge_value(std::string_view name, const MetricLabels& labels = {}) const;

  struct HistogramSnapshot {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> samples;  ///< sorted reservoir (<= kReservoirCapacity)

    double mean() const noexcept { return count ? sum / static_cast<double>(count) : 0.0; }
    /// Linear-interpolation percentile over the reservoir, p in [0, 100].
    /// Exact when count <= kReservoirCapacity. Pinned small-count
    /// behaviour: n=0 returns 0.0, n=1 returns the sample for every p,
    /// n=2 interpolates linearly between the two. p=0 / p=100 return the
    /// exactly-tracked min / max even after reservoir overflow.
    double percentile(double p) const;
  };
  HistogramSnapshot histogram(std::string_view name, const MetricLabels& labels = {}) const;

  bool empty() const;

  /// {"counters": [...], "gauges": [...], "histograms": [...]} — each entry
  /// carries name, labels and its data (histograms: count/sum/min/max/mean
  /// and p50/p90/p99).
  JsonValue to_json() const;
  std::string to_json_string(int indent = 2) const;

 private:
  struct Histogram {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> reservoir;
    std::uint64_t lcg = 0x243f6a8885a308d3ULL;  ///< fixed seed: deterministic
  };
  template <typename T>
  struct Series {
    std::string name;
    MetricLabels labels;
    T value{};
  };

  mutable std::mutex mutex_;
  std::map<std::string, Series<long>> counters_;
  std::map<std::string, Series<double>> gauges_;
  std::map<std::string, Series<Histogram>> histograms_;

  static std::string series_key(std::string_view name, const MetricLabels& labels);
};

}  // namespace kf
