// MetricsRegistry — thread-safe counters, gauges and histograms with
// labeled series.
//
// The registry is the numeric half of the telemetry layer (the trace log
// is the event half): search loops, the objective and the CLI record
// monotonic counters ("objective.evaluations"), last-value gauges
// ("search.best_cost_s") and sample distributions
// ("objective.eval_seconds") against it, and the whole registry renders to
// one JSON document (`kfc --metrics FILE`, schema documented in the README
// "Observability" section).
//
// A series is (name, labels); labels are sorted on registration so
// {kind=a, site=b} and {site=b, kind=a} are the same series. Histograms
// keep exact count/sum/min/max plus a bounded deterministic reservoir
// (Vitter's algorithm R with a fixed-seed LCG) for percentile estimates,
// so unbounded runs cannot grow memory without bound while short runs
// (fewer samples than the reservoir) get exact percentiles.
//
// A histogram may additionally carry *explicit buckets*
// (declare_buckets()): exact per-bucket counts over fixed upper bounds —
// what the Prometheus text exporter (telemetry/prometheus.hpp) renders as
// the `_bucket{le="..."}` series. Each bucket remembers the most recent
// sample observed while a request trace was active (telemetry/
// request_context.hpp) as its *exemplar*, linking the scrape surface back
// to individual request traces.
//
// All mutators are thread-safe (one registry mutex — the instrumented
// paths record at generation/evaluation granularity, not per-instruction).
// Disabled telemetry never reaches the registry: callers hold a nullable
// pointer and skip the call entirely, which keeps the overhead of a
// disabled build at one branch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/request_context.hpp"

namespace kf {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  /// Reservoir capacity for histogram percentile estimation.
  static constexpr std::size_t kReservoirCapacity = 4096;

  // ---- recording ----
  void count(std::string_view name, long delta = 1, const MetricLabels& labels = {});
  void gauge(std::string_view name, double value, const MetricLabels& labels = {});
  void observe(std::string_view name, double sample, const MetricLabels& labels = {});

  /// Declares explicit buckets (strictly increasing finite upper bounds;
  /// +Inf is implicit) for every histogram series named `name`. Applies to
  /// series created afterwards and retrofits already-existing series whose
  /// bucket counts are rebuilt from nothing — so declare before the first
  /// observe for exact counts. Idempotent for identical bounds.
  void declare_buckets(std::string_view name, std::vector<double> upper_bounds);

  // ---- reading (snapshots) ----
  long counter_value(std::string_view name, const MetricLabels& labels = {}) const;
  double gauge_value(std::string_view name, const MetricLabels& labels = {}) const;

  /// One explicit bucket of a snapshot: samples <= `le`, plus the last
  /// sample observed under an active request trace (the exemplar).
  struct Bucket {
    double le = 0.0;       ///< upper bound (inclusive)
    long count = 0;        ///< non-cumulative occupancy of this bucket
    TraceId exemplar_trace;  ///< null when no traced sample landed here
    double exemplar_value = 0.0;
  };

  struct HistogramSnapshot {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> samples;  ///< sorted reservoir (<= kReservoirCapacity)
    std::vector<Bucket> buckets;  ///< empty unless declare_buckets() was used;
                                  ///< last entry is the implicit +Inf bucket

    double mean() const noexcept { return count ? sum / static_cast<double>(count) : 0.0; }
    /// Linear-interpolation percentile over the reservoir, p in [0, 100].
    /// Exact when count <= kReservoirCapacity. Pinned small-count
    /// behaviour: n=0 returns 0.0, n=1 returns the sample for every p,
    /// n=2 interpolates linearly between the two. p=0 / p=100 return the
    /// exactly-tracked min / max even after reservoir overflow.
    double percentile(double p) const;
  };
  HistogramSnapshot histogram(std::string_view name, const MetricLabels& labels = {}) const;

  bool empty() const;

  /// Full point-in-time copy of every series, for exporters (the
  /// Prometheus renderer, RunReport) that need to iterate rather than
  /// probe by name. Series appear in deterministic key order.
  struct Snapshot {
    struct Counter { std::string name; MetricLabels labels; long value = 0; };
    struct Gauge { std::string name; MetricLabels labels; double value = 0.0; };
    struct Histo { std::string name; MetricLabels labels; HistogramSnapshot snap; };
    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<Histo> histograms;
  };
  Snapshot snapshot() const;

  /// {"counters": [...], "gauges": [...], "histograms": [...]} — each entry
  /// carries name, labels and its data (histograms: count/sum/min/max/mean
  /// and p50/p90/p99).
  JsonValue to_json() const;
  std::string to_json_string(int indent = 2) const;

 private:
  struct Histogram {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> reservoir;
    std::uint64_t lcg = 0x243f6a8885a308d3ULL;  ///< fixed seed: deterministic
    std::vector<Bucket> buckets;  ///< explicit buckets (+Inf last); may be empty
  };
  template <typename T>
  struct Series {
    std::string name;
    MetricLabels labels;
    T value{};
  };

  // std::less<> so the hot label-less path probes by string_view without
  // materialising a key string (the per-request serving counters).
  mutable std::mutex mutex_;
  std::map<std::string, Series<long>, std::less<>> counters_;
  std::map<std::string, Series<double>, std::less<>> gauges_;
  std::map<std::string, Series<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::vector<double>, std::less<>> bucket_bounds_;

  static std::string series_key(std::string_view name, const MetricLabels& labels);
};

}  // namespace kf
