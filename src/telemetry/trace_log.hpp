// TraceLog — append-only JSONL structured event log.
//
// Every emitted event is one JSON object on its own line:
//
//   {"ts":0.012345678,"type":"generation","gen":3,"best_cost_s":...}
//
// `ts` is seconds since the log was opened, read from a kf::Stopwatch —
// i.e. std::chrono::steady_clock, so timestamps are monotonic even across
// system clock adjustments. `type` names the event; remaining fields are
// event-specific (the stable schema is documented in the README
// "Observability" section). Consumers parse line-by-line; a crashed run
// leaves a readable prefix because each event is flushed whole.
//
// A default-constructed TraceLog is a no-op sink: emit() tests one pointer
// and returns without invoking the field-builder callback, so disabled
// tracing costs one branch and performs no allocation (tested by
// tests/test_telemetry.cpp). Emission is thread-safe: the line is built in
// a thread-local buffer and written under a mutex.
#pragma once

#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/json.hpp"
#include "util/stopwatch.hpp"

namespace kf {

/// Field builder handed to TraceLog::emit's callback; appends key/value
/// pairs to the current event line.
class TraceEvent {
 public:
  TraceEvent& num(std::string_view key, double v) {
    begin(key);
    append_json_number(*line_, v);
    return *this;
  }
  TraceEvent& num(std::string_view key, long v) {
    return num(key, static_cast<double>(v));
  }
  TraceEvent& num(std::string_view key, int v) {
    return num(key, static_cast<double>(v));
  }
  TraceEvent& num(std::string_view key, std::size_t v) {
    return num(key, static_cast<double>(v));
  }
  TraceEvent& str(std::string_view key, std::string_view v) {
    begin(key);
    append_json_string(*line_, v);
    return *this;
  }
  TraceEvent& boolean(std::string_view key, bool v) {
    begin(key);
    *line_ += v ? "true" : "false";
    return *this;
  }
  /// Embeds a pre-built JSON value (arrays, nested objects).
  TraceEvent& json(std::string_view key, const JsonValue& v) {
    begin(key);
    *line_ += v.to_string();
    return *this;
  }

 private:
  friend class TraceLog;
  explicit TraceEvent(std::string* line) : line_(line) {}
  void begin(std::string_view key) {
    *line_ += ',';
    append_json_string(*line_, key);
    *line_ += ':';
  }
  std::string* line_;
};

class TraceLog {
 public:
  TraceLog() = default;  ///< disabled: emit() is a no-op

  /// Logs to a borrowed stream (must outlive the log).
  explicit TraceLog(std::ostream& sink) : sink_(&sink) {}

  /// Opens `path` for (truncating) write; throws kf::RuntimeError when the
  /// file cannot be opened.
  explicit TraceLog(const std::string& path);

  bool enabled() const noexcept { return sink_ != nullptr; }

  /// Number of events written so far.
  long events() const noexcept { return events_; }

  /// Emits one event. `fill` receives a TraceEvent to append fields; it is
  /// not invoked when the log is disabled.
  template <typename Fn>
  void emit(std::string_view type, Fn&& fill) {
    if (sink_ == nullptr) return;
    std::string line = begin_line(type);
    TraceEvent event(&line);
    fill(event);
    write_line(line);
  }

  /// Emits a field-less event.
  void emit(std::string_view type) {
    emit(type, [](TraceEvent&) {});
  }

 private:
  std::unique_ptr<std::ostream> owned_;  ///< set when constructed from a path
  std::ostream* sink_ = nullptr;
  Stopwatch watch_;  ///< steady-clock origin for monotonic `ts`
  std::mutex mutex_;
  long events_ = 0;

  std::string begin_line(std::string_view type) const;
  void write_line(std::string& line);
};

}  // namespace kf
