// SpanTracer — bounded, thread-aware RAII span profiler for the search path.
//
// A span is one timed interval of the hot path ("hgga.generation",
// "objective.plan_costs", ...). Spans nest: each thread keeps an open-span
// stack, so a span's parent is whatever span the same thread had open when
// it started. The tracer records into a preallocated ring-less bounded
// buffer — once `capacity` spans are recorded further spans are counted as
// dropped rather than reallocating, keeping worst-case memory fixed.
//
// Like every telemetry sink, the tracer is reached through the nullable
// `Telemetry` context: `scoped_span(telemetry, "name")` (telemetry.hpp) is
// a single branch and allocates nothing when no tracer is attached — the
// same zero-overhead contract MetricsRegistry and TraceLog honour.
//
// Two span kinds share the buffer:
//   * wall spans      opened/closed by `span()` Scopes, timed on the shared
//                     steady-clock Stopwatch; exported under pid 2 "search"
//                     — except cat "serve" spans (the request lifecycle
//                     stages PlanServer opens), which export under pid 4
//                     "serve (requests)" so request rows sit in their own
//                     process lane.
//   * virtual spans   pre-timed intervals appended by `virtual_span()`,
//                     used for simulated-time attribution (the per-launch
//                     TimeBreakdown components of the final plan); exported
//                     under pid 3 "model". Their durations are *simulated*
//                     seconds, so flame-table rows of cat "model" reconcile
//                     exactly with TimeBreakdown sums.
//
// Wall spans opened while a request trace is active (TraceScope,
// telemetry/request_context.hpp) are stamped with the owning 128-bit trace
// id and export it as a `"trace_id"` arg, so a wide event's trace id finds
// its spans in the Chrome stream.
//
// Export goes through the shared ChromeTraceWriter (util/chrome_trace.hpp)
// so `--spans` output opens in one Perfetto view with the `--trace` device
// timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "telemetry/request_context.hpp"
#include "util/stopwatch.hpp"

namespace kf {

class ChromeTraceWriter;
class FlightRecorder;

class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);

  /// RAII handle closing its span on destruction. A default-constructed
  /// Scope (what `scoped_span` returns when telemetry is off, and what
  /// `span()` returns once the buffer is full) is inert.
  class [[nodiscard]] Scope {
   public:
    Scope() = default;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { end(); }
    /// Closes the span before scope exit (splitting one lexical scope into
    /// consecutive spans); further end() calls are no-ops.
    void end() noexcept {
      if (tracer_ != nullptr) tracer_->close(index_);
      tracer_ = nullptr;
    }
    bool active() const noexcept { return tracer_ != nullptr; }

   private:
    friend class SpanTracer;
    Scope(SpanTracer* tracer, std::uint32_t index) noexcept
        : tracer_(tracer), index_(index) {}
    SpanTracer* tracer_ = nullptr;
    std::uint32_t index_ = 0;
  };

  /// Opens a wall-clock span on the calling thread. `name`/`cat` must be
  /// string literals (or otherwise outlive the tracer) — the hot path
  /// stores the pointers without copying.
  Scope span(const char* name, const char* cat = "search");

  /// Appends a pre-timed simulated-time span (`start_s`/`dur_s` in
  /// simulated seconds). Returns the record index — pass it as `parent` to
  /// nest subsequent spans under it — or -1 when the buffer is full.
  long virtual_span(std::string_view name, const char* cat, int tid,
                    double start_s, double dur_s, long parent = -1);

  /// One aggregated row of the self-time flame table. `self_s` is the
  /// span's total duration minus the durations of its direct children —
  /// time spent in the span itself rather than in instrumented callees.
  struct FlameRow {
    std::string name;
    std::string cat;
    long count = 0;
    double total_s = 0.0;
    double self_s = 0.0;
  };

  /// Aggregates closed spans by (cat, name), sorted by self-time
  /// descending. Still-open spans are excluded.
  std::vector<FlameRow> flame_table() const;

  long recorded() const;  ///< spans in the buffer (open ones included)
  long dropped() const;   ///< spans rejected because the buffer was full
  std::size_t capacity() const noexcept { return capacity_; }
  int threads_seen() const;  ///< distinct threads that opened wall spans

  /// Tees every future cat "serve" span close into the flight recorder's
  /// ring (search-category spans are too chatty for the black box). The
  /// recorder must outlive this tracer.
  void set_recorder(FlightRecorder* recorder) noexcept { recorder_ = recorder; }

  /// Appends this tracer's spans to `w`: wall spans under pid 2 "search
  /// (host)" (cat "serve" spans under pid 4 "serve (requests)"), virtual
  /// spans under pid 3 "model (simulated)". Emits the process/thread
  /// metadata for the pids it uses; spans stamped with a request trace
  /// carry a "trace_id" arg. Open spans are skipped.
  void append_chrome_trace(ChromeTraceWriter& w) const;

  /// Closed wall spans stamped with `trace` (tests and linkage audits).
  long spans_with_trace(const TraceId& trace) const;

  /// Standalone Chrome trace-event document (convenience over
  /// append_chrome_trace + finish).
  std::string to_chrome_trace_json() const;

 private:
  struct Record {
    const char* name = "";
    const char* cat = "";
    std::int32_t parent = -1;  ///< record index of enclosing span, -1 = root
    std::int32_t tid = 0;      ///< dense thread index (wall) or given (virtual)
    bool simulated = false;
    double start_s = 0.0;
    double dur_s = -1.0;  ///< -1 while open
    TraceId trace;        ///< owning request trace at open; null = none
  };
  struct ThreadState {
    int tid = 0;
    std::vector<std::uint32_t> open;  ///< indices of this thread's open spans
  };

  void close(std::uint32_t index);
  ThreadState& state_for_current_thread();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  Stopwatch watch_;
  std::vector<Record> records_;
  std::deque<std::string> owned_names_;  ///< stable storage for virtual-span names
  std::unordered_map<std::thread::id, ThreadState> threads_;
  long dropped_ = 0;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace kf
