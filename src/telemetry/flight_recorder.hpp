// FlightRecorder — the serving path's always-on black box.
//
// A bounded, lock-striped ring of fixed-size binary records that
// continuously captures the last N wide serve events, span summaries,
// decision entries, periodic counter snapshots and trigger markers, each
// stamped with the owning request's TraceId. Recording is lock-free: a
// writer claims a slot with one fetch_add on its stripe's cursor and fills
// it in place; a concurrent dump may observe a torn slot, which the
// per-record CRC32 detects at parse time instead of a lock preventing it
// at write time. Exact totals survive eviction: per-stripe write counters
// give recorded()/dropped() without scanning.
//
// On trigger the recorder writes a self-contained incident bundle:
//
//   kfc-flight-recorder/v1\n        one text identification line
//   BundleHeader                    geometry + StateSnapshot, CRC-framed
//   InflightDump x kInflightSlots   per-worker in-flight table, CRC each
//   FlightRecord x (stripes*slots)  the raw ring, CRC per record
//
// Two dump paths share that layout:
//
//   * dump_incident(): normal path. Serializes to memory and commits via
//     write -> fsync -> atomic-rename (util/fs_io.hpp), the plan store's
//     discipline, so a crash mid-dump never leaves a torn bundle behind.
//   * signal_dump(): async-signal-safe path for fatal signals. Armed ahead
//     of time with a pre-opened fd and pre-allocated header/in-flight
//     scratch; the handler only performs relaxed atomic loads, CRC table
//     lookups, write(2) and fsync(2) — no allocation, no locks, no stdio.
//     Concurrent writers may tear individual ring slots; the CRC framing
//     quarantines exactly those at parse time. See DESIGN.md item 19 for
//     the full signal-safety budget.
//
// The StatePage is a cache of serving counters mirrored as plain atomics
// precisely so the signal path can snapshot them without taking the
// metrics registry's locks. The in-flight table exists because a crashed
// request never reaches the finish() wide event: PlanServer publishes each
// request's identity and stage ledger into its worker's slot at stage
// boundaries, so the bundle can name the request that was on-CPU when the
// process died.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/request_context.hpp"
#include "util/stopwatch.hpp"

namespace kf {

class MetricsRegistry;

/// Why a bundle was written. Stable numeric values: they are serialized.
enum class IncidentReason : std::uint16_t {
  kNone = 0,
  kSignal = 1,         ///< fatal signal (async-signal-safe path)
  kStoreSalvage = 2,   ///< store open salvaged a torn/bit-rotten journal
  kSloBurn = 3,        ///< SLO burn rate crossed the configured ceiling
  kDeadlineSpike = 4,  ///< deadline-miss spike within one watchdog scan
  kStalledWorker = 5,  ///< watchdog saw a worker exceed the stall threshold
  kExitDump = 6,       ///< operator-requested dump at batch exit
};
const char* to_string(IncidentReason reason) noexcept;

/// Record kinds stored in the ring. Stable numeric values: serialized.
enum class FlightRecordType : std::uint16_t {
  kEmpty = 0,     ///< never-written slot (zeroed at construction)
  kServe = 1,     ///< one finished request (the wide event, binary form)
  kDecision = 2,  ///< one fusion decision (DecisionLog tee)
  kSpan = 3,      ///< one closed serve-category span (SpanTracer tee)
  kCounters = 4,  ///< periodic StateSnapshot (watchdog scan tee)
  kTrigger = 5,   ///< incident trigger marker
};

/// Plain-POD mirror of StatePage, embedded in headers and counter records.
struct StateSnapshot {
  std::int64_t requests_total = 0;
  std::int64_t deadline_missed_total = 0;
  std::int64_t degraded_total = 0;
  std::int64_t rejected_overload_total = 0;
  std::int64_t coalesce_timeout_total = 0;
  std::int64_t retries_total = 0;
  std::int64_t trivial_floor_total = 0;
  std::int64_t incidents_total = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_capacity = 0;
  std::int64_t workers = 0;
  std::int64_t inflight = 0;
  std::int64_t store_salvaged = 0;
  std::int64_t store_quarantined = 0;
  std::int64_t calibration_drift = 0;
  double worst_burn = 0.0;
};

/// Serving counters mirrored as lock-free atomics so the signal path can
/// snapshot them with relaxed loads. Writers (PlanServer::finish, the
/// ServeEngine queue gauge, the watchdog, serve-batch setup) update the
/// fields they own; nobody takes a lock.
struct StatePage {
  std::atomic<std::int64_t> requests_total{0};
  std::atomic<std::int64_t> deadline_missed_total{0};
  std::atomic<std::int64_t> degraded_total{0};
  std::atomic<std::int64_t> rejected_overload_total{0};
  std::atomic<std::int64_t> coalesce_timeout_total{0};
  std::atomic<std::int64_t> retries_total{0};
  std::atomic<std::int64_t> trivial_floor_total{0};
  std::atomic<std::int64_t> incidents_total{0};
  std::atomic<std::int64_t> queue_depth{0};
  std::atomic<std::int64_t> queue_capacity{0};
  std::atomic<std::int64_t> workers{0};
  std::atomic<std::int64_t> inflight{0};
  std::atomic<std::int64_t> store_salvaged{0};
  std::atomic<std::int64_t> store_quarantined{0};
  std::atomic<std::int64_t> calibration_drift{0};
  std::atomic<double> worst_burn{0.0};

  StateSnapshot snapshot() const noexcept;  ///< relaxed loads; signal-safe
};

/// Fixed per-record payload area. Large enough for every payload type
/// below (static_asserted in the .cpp).
inline constexpr std::size_t kFlightPayloadBytes = 136;

/// One finished request — the binary twin of the "serve_request" wide
/// event, so postmortem can rebuild the stage ledger without the JSONL log.
struct FlightServePayload {
  std::uint64_t program_fp = 0;
  std::uint64_t device_fp = 0;
  double latency_s = 0.0;
  double deadline_s = 0.0;
  double queue_wait_s = 0.0;
  double cost_s = 0.0;
  double baseline_cost_s = 0.0;
  double stage_s[RequestContext::kNumStages] = {};
  std::int16_t worker_id = -1;
  std::int16_t retries = 0;
  std::uint8_t rung = 0;       ///< ServeRung numeric value
  std::uint8_t admission = 0;  ///< AdmissionOutcome numeric value
  std::uint8_t flags = 0;      ///< kFlag* bits below
  std::uint8_t pad = 0;

  static constexpr std::uint8_t kFlagDegraded = 1u << 0;
  static constexpr std::uint8_t kFlagCoalesced = 1u << 1;
  static constexpr std::uint8_t kFlagDeadlineMet = 1u << 2;
};

/// One fusion decision (DecisionLog tee). Mirrors provenance.hpp's
/// Decision with the dominant-component pointer flattened to chars.
struct FlightDecisionPayload {
  std::int32_t site = 0;
  std::int32_t accepted = 0;
  std::int32_t member_count = 0;
  std::int32_t pad = 0;
  double cost_delta_s = 0.0;
  std::int32_t members[16] = {};
  char dominant[32] = {};
};

/// One closed serve-category span (SpanTracer tee).
struct FlightSpanPayload {
  char name[48] = {};
  double start_s = 0.0;
  double dur_s = 0.0;
  std::int32_t tid = 0;
  std::int32_t pad = 0;
};

/// Incident trigger marker, recorded into the ring just before a dump so
/// the bundle carries its own cause.
struct FlightTriggerPayload {
  std::uint16_t reason = 0;  ///< IncidentReason numeric value
  std::uint16_t pad = 0;
  std::int32_t signal = 0;
  std::int32_t worker_id = -1;
  std::int32_t pad2 = 0;
  std::int64_t stalled_seq = 0;
  double age_s = 0.0;
  double burn = 0.0;
  char detail[64] = {};
};

/// One ring slot. 184 bytes; crc covers every byte before it.
struct FlightRecord {
  std::uint32_t magic = 0;  ///< kMagic when written; 0 = empty slot
  std::uint16_t type = 0;   ///< FlightRecordType numeric value
  std::uint16_t payload_bytes = 0;
  std::uint64_t seq = 0;  ///< global claim order (gaps = evicted records)
  double t_s = 0.0;       ///< recorder clock at claim
  TraceId trace;
  unsigned char payload[kFlightPayloadBytes] = {};
  std::uint32_t pad = 0;
  std::uint32_t crc = 0;

  static constexpr std::uint32_t kMagic = 0x4B465252u;  // "KFRR"

  FlightRecordType record_type() const noexcept {
    return static_cast<FlightRecordType>(type);
  }
  /// Typed payload views; null when the record is a different type.
  const FlightServePayload* as_serve() const noexcept;
  const FlightDecisionPayload* as_decision() const noexcept;
  const FlightSpanPayload* as_span() const noexcept;
  const StateSnapshot* as_counters() const noexcept;
  const FlightTriggerPayload* as_trigger() const noexcept;
};

/// One in-flight table entry as serialized into a bundle.
struct InflightDump {
  std::uint32_t magic = 0;  ///< kMagic always (even for idle slots)
  std::uint32_t busy = 0;   ///< 1 when a request was in flight at dump
  std::int32_t slot = -1;
  std::int32_t worker_id = -1;
  TraceId trace;
  std::int64_t seq = 0;
  double since_s = 0.0;
  double deadline_s = 0.0;
  double stage_s[RequestContext::kNumStages] = {};
  std::uint32_t pad = 0;
  std::uint32_t crc = 0;

  static constexpr std::uint32_t kMagic = 0x4B464946u;  // "KFIF"
};

/// Bundle header: geometry so the parser can walk the file, plus the
/// counter snapshot. CRC covers every byte before the crc field.
struct BundleHeader {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t reason = 0;  ///< IncidentReason numeric value
  std::int32_t signal = 0;   ///< signal number for kSignal, else 0
  std::uint32_t stripes = 0;
  std::uint32_t slots_per_stripe = 0;
  std::uint32_t record_bytes = 0;    ///< sizeof(FlightRecord) at write time
  std::uint32_t inflight_slots = 0;  ///< in-flight table entries that follow
  std::uint32_t inflight_bytes = 0;  ///< sizeof(InflightDump) at write time
  std::int64_t recorded_total = 0;
  std::int64_t dropped_total = 0;
  double captured_s = 0.0;  ///< recorder clock at dump
  StateSnapshot state;
  std::uint32_t pad = 0;
  std::uint32_t crc = 0;

  static constexpr std::uint32_t kMagic = 0x4B465242u;  // "KFRB"
  static constexpr std::uint16_t kVersion = 1;

  IncidentReason incident_reason() const noexcept {
    return static_cast<IncidentReason>(reason);
  }
};

/// The text identification line every bundle starts with.
inline constexpr std::string_view kBundleLine = "kfc-flight-recorder/v1\n";

/// A parsed bundle. parse() salvages every CRC-valid record from any
/// truncation or corruption of the file — the same posture as the plan
/// store's journal recovery.
struct FlightBundle {
  bool header_ok = false;  ///< identification line + header CRC + geometry
  bool truncated = false;  ///< file shorter than the header promises
  BundleHeader header;
  std::vector<InflightDump> inflight;  ///< CRC-valid busy entries only
  long inflight_quarantined = 0;       ///< in-flight entries failing CRC
  std::vector<FlightRecord> records;   ///< CRC-valid records, seq order
  long quarantined = 0;  ///< non-empty ring slots failing CRC (torn writes)
  long empty_slots = 0;  ///< never-written slots (ring not yet full)

  bool clean() const noexcept {
    return header_ok && !truncated && quarantined == 0 &&
           inflight_quarantined == 0;
  }
};

class FlightRecorder {
 public:
  static constexpr int kInflightSlots = 32;

  struct Config {
    std::size_t capacity = 4096;  ///< total ring slots across all stripes
    int stripes = 8;
    /// Timestamp source for records; must share the serving clock domain.
    /// Default: a Stopwatch started at construction.
    std::function<double()> clock;
    /// When set, dump_incident() bumps serve.incidents_total here. The
    /// signal path never touches it (the registry takes locks).
    MetricsRegistry* metrics = nullptr;
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(Config config);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // -- recording (lock-free; safe from any thread) --------------------
  void record_serve(const FlightServePayload& payload, TraceId trace);
  void record_decision(int site, bool accepted, const int* members,
                       int member_count, double cost_delta_s,
                       const char* dominant, TraceId trace);
  void record_span(const char* name, double start_s, double dur_s, int tid,
                   TraceId trace);
  void record_counters();  ///< snapshot the state page into the ring
  void record_trigger(const FlightTriggerPayload& payload, TraceId trace);

  StatePage& state() noexcept { return state_; }
  const StatePage& state() const noexcept { return state_; }

  long recorded() const noexcept;  ///< records ever claimed (exact)
  long dropped() const noexcept;   ///< records evicted by overwrite (exact)
  std::size_t capacity() const noexcept { return slots_.size(); }
  double now_s() const { return clock_(); }

  // -- in-flight table ------------------------------------------------
  /// Marks a request in flight; returns the slot to pass to the other
  /// in-flight calls. worker_id < 0 (direct serve() calls) hashes the
  /// calling thread into a slot instead.
  int inflight_begin(int worker_id, TraceId trace, long seq,
                     double deadline_s, double now_s) noexcept;
  /// Republishes the request's stage ledger (relaxed stores; cheap).
  void inflight_update(int slot, const RequestContext& rc) noexcept;
  void inflight_end(int slot) noexcept;

  // -- incident dumps -------------------------------------------------
  /// Serializes the full bundle to memory. Torn ring slots (concurrent
  /// writers) are included as-is; their CRCs fail at parse time.
  std::string serialize(IncidentReason reason, int signal = 0) const;

  /// Normal-path dump: serialize + write-fsync-rename into `dir` as
  /// incident-<ordinal>-<reason>.kfr. Returns the bundle path. Bumps
  /// state().incidents_total and, when configured, serve.incidents_total.
  std::string dump_incident(const std::string& dir, IncidentReason reason);

  // -- fatal-signal path ----------------------------------------------
  /// Pre-opens <dir>/incident-signal.kfr, pre-allocates dump scratch and
  /// installs handlers for SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL. At most
  /// one recorder may be armed per process; re-arming moves the hook.
  /// Returns the bundle path the handler will write.
  std::string arm_signal_dump(const std::string& dir);
  void disarm_signal_dump() noexcept;  ///< restores previous handlers
  bool signal_armed() const noexcept;
  const std::string& signal_bundle_path() const noexcept {
    return signal_path_;
  }

  /// The handler body: writes the bundle to the pre-opened fd using only
  /// async-signal-safe calls. Public so tests can exercise the exact
  /// handler path without dying.
  void signal_dump(int signal) noexcept;

  // -- bundle reading -------------------------------------------------
  static FlightBundle parse(std::string_view bytes);
  static FlightBundle read(const std::string& path);  ///< throws StoreError

  static const char* kSignalBundleFile;  // "incident-signal.kfr"

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> writes{0};
  };
  struct alignas(64) InflightSlot {
    std::atomic<std::uint32_t> busy{0};
    std::atomic<std::int32_t> worker_id{-1};
    std::atomic<std::uint64_t> trace_hi{0};
    std::atomic<std::uint64_t> trace_lo{0};
    std::atomic<std::int64_t> seq{0};
    std::atomic<double> since_s{0.0};
    std::atomic<double> deadline_s{0.0};
    std::atomic<double> stage_s[RequestContext::kNumStages] = {};
  };

  FlightRecord* claim(FlightRecordType type, TraceId trace,
                      std::uint16_t payload_bytes) noexcept;
  void seal(FlightRecord* record) noexcept;
  BundleHeader make_header(IncidentReason reason, int signal) const noexcept;
  void fill_inflight_dump(int slot, InflightDump* out) const noexcept;

  std::function<double()> clock_;
  Stopwatch epoch_;  // backs the default clock
  MetricsRegistry* metrics_ = nullptr;
  int stripes_ = 0;
  std::size_t slots_per_stripe_ = 0;
  std::vector<FlightRecord> slots_;  // stripe s owns [s*per, (s+1)*per)
  std::vector<Stripe> stripe_state_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<double> last_t_s_{0.0};  // signal path's clock (clock_() may
                                       // not be signal-safe to call)
  InflightSlot inflight_[kInflightSlots];
  StatePage state_;

  // signal-path state (pre-allocated at arm time)
  std::string signal_path_;
  int signal_fd_ = -1;
  std::vector<InflightDump> signal_scratch_;
  std::atomic<bool> dumping_{false};
};

}  // namespace kf
