// RequestContext — per-request tracing identity and stage budget ledger.
//
// The serving path (serve/plan_server.hpp) creates one RequestContext at
// admission. It carries:
//
//   * a 128-bit TraceId, derived deterministically from the request ordinal
//     and the (program, device) fingerprints so replayed batches produce
//     identical traces, and
//   * a per-stage ledger of how much of the request's deadline each
//     lifecycle stage consumed (admission, queue wait, store lookup, polish,
//     search, backoff, write-back).
//
// The trace id propagates *implicitly*: `TraceScope` installs it in a
// thread-local slot for the duration of the request, and every sink that
// records during that window stamps it —
//
//   * SpanTracer stamps each opened span (exported as a "trace_id" arg in
//     the Chrome trace),
//   * DecisionLog stamps each decision,
//   * TraceLog stamps each emitted event line ("trace":"<32 hex>"),
//   * MetricsRegistry captures it as the exemplar of histogram buckets.
//
// so SearchDriver, Objective, GroupCostCache and PlanStore need no API
// change to participate: their existing telemetry calls inherit the owning
// request's id. The thread-local is a trivially-copyable 16-byte value;
// reading or scoping it allocates nothing, keeping the disabled-telemetry
// path at the usual one-branch/zero-allocation contract.
#pragma once

#include <cstdint>
#include <string>

namespace kf {

/// 128-bit trace identifier. Zero (the default) means "no active trace";
/// derive() never returns zero.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const noexcept { return (hi | lo) != 0; }

  /// Writes the canonical 32-char lowercase hex form plus a NUL terminator
  /// into `out` (no allocation — usable on hot paths).
  void format(char out[33]) const noexcept;

  /// Allocating convenience over format().
  std::string to_hex() const;

  /// Parses the 32-hex-char form; returns the null id on malformed input.
  static TraceId from_hex(std::string_view hex) noexcept;

  /// Deterministic derivation (splitmix64 mixing) from a request ordinal
  /// and the (program, device) fingerprints. Never returns the null id.
  static TraceId derive(std::uint64_t seq, std::uint64_t program_fp,
                        std::uint64_t device_fp,
                        std::uint64_t salt = 0) noexcept;

  friend bool operator==(const TraceId& a, const TraceId& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const TraceId& a, const TraceId& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// The calling thread's active trace id (the null id when no request is in
/// flight on this thread). Never allocates.
TraceId current_trace() noexcept;

/// RAII installer for the thread-local active trace; restores the previous
/// value on destruction so nested scopes (a request served from inside
/// another instrumented region) unwind correctly.
class [[nodiscard]] TraceScope {
 public:
  explicit TraceScope(TraceId id) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceId prev_;
};

/// Per-request context created at admission: identity plus the stage
/// ledger the wide event reports as "deadline budget consumed per stage".
struct RequestContext {
  /// Lifecycle stages of one served request, in ladder order.
  enum Stage {
    kAdmission = 0,  ///< admission decision (token bucket)
    kQueueWait,      ///< time parked in the virtual queue
    kStoreGet,       ///< rung 1 store lookup + re-validation
    kPolish,         ///< rung 2 repair + local polish
    kSearch,         ///< rung 3 full search attempts
    kBackoff,        ///< inter-attempt fault-storm backoff
    kCoalesceWait,   ///< parked on another request's in-flight search
    kWriteBack,      ///< store write-back of the result
    kNumStages
  };
  static const char* stage_name(int stage) noexcept;

  TraceId trace_id;
  long seq = 0;            ///< 1-based request ordinal on the owning server
  double deadline_s = 0.0; ///< effective deadline the request ran under
  double stage_s[kNumStages] = {};

  /// Adds `seconds` (clamped at zero) to a stage's ledger entry.
  void charge(Stage stage, double seconds) noexcept {
    if (seconds > 0.0) stage_s[stage] += seconds;
  }

  /// Total seconds attributed across all stages (<= latency; the remainder
  /// is uninstrumented response-path time).
  double consumed_s() const noexcept {
    double total = 0.0;
    for (double s : stage_s) total += s;
    return total;
  }
};

}  // namespace kf
