#include "telemetry/span_tracer.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/chrome_trace.hpp"
#include "util/error.hpp"

namespace kf {

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity) {
  KF_REQUIRE(capacity_ > 0, "SpanTracer capacity must be positive");
  // Reserve up front so the hot-path push_back never reallocates; the
  // buffer is bounded by construction, not by growth policy.
  records_.reserve(capacity_);
}

SpanTracer::ThreadState& SpanTracer::state_for_current_thread() {
  // Callers hold mu_. Dense tids are assigned in first-span order so trace
  // rows are stable for a fixed schedule and small for any thread count.
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.tid = static_cast<int>(threads_.size()) - 1;
  return it->second;
}

SpanTracer::Scope SpanTracer::span(const char* name, const char* cat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return Scope();
  }
  ThreadState& ts = state_for_current_thread();
  Record r;
  r.name = name;
  r.cat = cat;
  r.tid = ts.tid;
  r.parent = ts.open.empty() ? -1 : static_cast<std::int32_t>(ts.open.back());
  r.start_s = watch_.elapsed_s();
  const auto index = static_cast<std::uint32_t>(records_.size());
  records_.push_back(r);
  ts.open.push_back(index);
  return Scope(this, index);
}

void SpanTracer::close(std::uint32_t index) {
  const double now_s = watch_.elapsed_s();
  std::lock_guard<std::mutex> lock(mu_);
  Record& r = records_[index];
  r.dur_s = now_s - r.start_s;
  ThreadState& ts = state_for_current_thread();
  // Scopes destruct in LIFO order per thread, so the closing span is the
  // top of its thread's open stack.
  if (!ts.open.empty() && ts.open.back() == index) ts.open.pop_back();
}

long SpanTracer::virtual_span(std::string_view name, const char* cat, int tid,
                              double start_s, double dur_s, long parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return -1;
  }
  owned_names_.emplace_back(name);
  Record r;
  r.name = owned_names_.back().c_str();
  r.cat = cat;
  r.tid = tid;
  r.parent = parent < 0 ? -1 : static_cast<std::int32_t>(parent);
  r.simulated = true;
  r.start_s = start_s;
  r.dur_s = dur_s;
  records_.push_back(r);
  return static_cast<long>(records_.size()) - 1;
}

long SpanTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<long>(records_.size());
}

long SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int SpanTracer::threads_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

std::vector<SpanTracer::FlameRow> SpanTracer::flame_table() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Self time = own duration minus direct children's durations. Children of
  // still-open spans contribute to nothing (their parent has no duration
  // yet), and open spans are excluded from the table.
  std::vector<double> child_sum(records_.size(), 0.0);
  for (const Record& r : records_) {
    if (r.parent >= 0 && r.dur_s >= 0.0)
      child_sum[static_cast<std::size_t>(r.parent)] += r.dur_s;
  }
  std::map<std::pair<std::string, std::string>, FlameRow> rows;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (r.dur_s < 0.0) continue;
    FlameRow& row = rows[{r.cat, r.name}];
    if (row.count == 0) {
      row.name = r.name;
      row.cat = r.cat;
    }
    ++row.count;
    row.total_s += r.dur_s;
    row.self_s += r.dur_s - child_sum[i];
  }
  std::vector<FlameRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const FlameRow& a, const FlameRow& b) {
    if (a.self_s != b.self_s) return a.self_s > b.self_s;
    return a.name < b.name;  // deterministic tie-break
  });
  return out;
}

void SpanTracer::append_chrome_trace(ChromeTraceWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  bool any_wall = false;
  bool any_virtual = false;
  for (const Record& r : records_) {
    if (r.dur_s < 0.0) continue;
    (r.simulated ? any_virtual : any_wall) = true;
  }
  if (any_wall) {
    w.process_name(ChromeTraceWriter::kSearchPid, "search (host)");
    for (const auto& [id, ts] : threads_)
      w.thread_name(ChromeTraceWriter::kSearchPid, ts.tid,
                    ts.tid == 0 ? "main" : "worker");
  }
  if (any_virtual)
    w.process_name(ChromeTraceWriter::kModelPid, "model (simulated)");
  for (const Record& r : records_) {
    if (r.dur_s < 0.0) continue;  // open span: no duration to report
    const int pid = r.simulated ? ChromeTraceWriter::kModelPid
                                : ChromeTraceWriter::kSearchPid;
    w.complete_event(r.name, r.simulated ? "model" : r.cat, pid, r.tid,
                     r.start_s * 1e6, r.dur_s * 1e6);
  }
}

std::string SpanTracer::to_chrome_trace_json() const {
  ChromeTraceWriter w;
  append_chrome_trace(w);
  return w.finish();
}

}  // namespace kf
