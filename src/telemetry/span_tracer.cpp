#include "telemetry/span_tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "util/chrome_trace.hpp"
#include "util/error.hpp"

namespace kf {

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity) {
  KF_REQUIRE(capacity_ > 0, "SpanTracer capacity must be positive");
  // Reserve up front so the hot-path push_back never reallocates; the
  // buffer is bounded by construction, not by growth policy.
  records_.reserve(capacity_);
}

SpanTracer::ThreadState& SpanTracer::state_for_current_thread() {
  // Callers hold mu_. Dense tids are assigned in first-span order so trace
  // rows are stable for a fixed schedule and small for any thread count.
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.tid = static_cast<int>(threads_.size()) - 1;
  return it->second;
}

SpanTracer::Scope SpanTracer::span(const char* name, const char* cat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return Scope();
  }
  ThreadState& ts = state_for_current_thread();
  Record r;
  r.name = name;
  r.cat = cat;
  r.trace = current_trace();  // null outside a request; 16-byte POD copy
  r.tid = ts.tid;
  r.parent = ts.open.empty() ? -1 : static_cast<std::int32_t>(ts.open.back());
  r.start_s = watch_.elapsed_s();
  const auto index = static_cast<std::uint32_t>(records_.size());
  records_.push_back(r);
  ts.open.push_back(index);
  return Scope(this, index);
}

void SpanTracer::close(std::uint32_t index) {
  const double now_s = watch_.elapsed_s();
  std::lock_guard<std::mutex> lock(mu_);
  Record& r = records_[index];
  r.dur_s = now_s - r.start_s;
  ThreadState& ts = state_for_current_thread();
  // Scopes destruct in LIFO order per thread, so the closing span is the
  // top of its thread's open stack.
  if (!ts.open.empty() && ts.open.back() == index) ts.open.pop_back();
  if (recorder_ != nullptr && std::string_view(r.cat) == "serve")
    recorder_->record_span(r.name, r.start_s, r.dur_s, r.tid, r.trace);
}

long SpanTracer::virtual_span(std::string_view name, const char* cat, int tid,
                              double start_s, double dur_s, long parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return -1;
  }
  owned_names_.emplace_back(name);
  Record r;
  r.name = owned_names_.back().c_str();
  r.cat = cat;
  r.tid = tid;
  r.parent = parent < 0 ? -1 : static_cast<std::int32_t>(parent);
  r.simulated = true;
  r.start_s = start_s;
  r.dur_s = dur_s;
  records_.push_back(r);
  return static_cast<long>(records_.size()) - 1;
}

long SpanTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<long>(records_.size());
}

long SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int SpanTracer::threads_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

long SpanTracer::spans_with_trace(const TraceId& trace) const {
  std::lock_guard<std::mutex> lock(mu_);
  long n = 0;
  for (const Record& r : records_)
    if (r.dur_s >= 0.0 && !r.simulated && r.trace == trace) ++n;
  return n;
}

std::vector<SpanTracer::FlameRow> SpanTracer::flame_table() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Self time = own duration minus direct children's durations. Children of
  // still-open spans contribute to nothing (their parent has no duration
  // yet), and open spans are excluded from the table.
  std::vector<double> child_sum(records_.size(), 0.0);
  for (const Record& r : records_) {
    if (r.parent >= 0 && r.dur_s >= 0.0)
      child_sum[static_cast<std::size_t>(r.parent)] += r.dur_s;
  }
  std::map<std::pair<std::string, std::string>, FlameRow> rows;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (r.dur_s < 0.0) continue;
    FlameRow& row = rows[{r.cat, r.name}];
    if (row.count == 0) {
      row.name = r.name;
      row.cat = r.cat;
    }
    ++row.count;
    row.total_s += r.dur_s;
    row.self_s += r.dur_s - child_sum[i];
  }
  std::vector<FlameRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const FlameRow& a, const FlameRow& b) {
    if (a.self_s != b.self_s) return a.self_s > b.self_s;
    return a.name < b.name;  // deterministic tie-break
  });
  return out;
}

namespace {

bool is_serve_cat(const char* cat) noexcept {
  return std::string_view(cat) == "serve";
}

}  // namespace

void SpanTracer::append_chrome_trace(ChromeTraceWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  bool any_search = false;
  bool any_serve = false;
  bool any_virtual = false;
  for (const Record& r : records_) {
    if (r.dur_s < 0.0) continue;
    if (r.simulated) any_virtual = true;
    else if (is_serve_cat(r.cat)) any_serve = true;
    else any_search = true;
  }
  if (any_search) {
    w.process_name(ChromeTraceWriter::kSearchPid, "search (host)");
    for (const auto& [id, ts] : threads_)
      w.thread_name(ChromeTraceWriter::kSearchPid, ts.tid,
                    ts.tid == 0 ? "main" : "worker");
  }
  if (any_serve) {
    w.process_name(ChromeTraceWriter::kServePid, "serve (requests)");
    for (const auto& [id, ts] : threads_)
      w.thread_name(ChromeTraceWriter::kServePid, ts.tid,
                    ts.tid == 0 ? "main" : "worker");
  }
  if (any_virtual)
    w.process_name(ChromeTraceWriter::kModelPid, "model (simulated)");
  for (const Record& r : records_) {
    if (r.dur_s < 0.0) continue;  // open span: no duration to report
    const int pid = r.simulated ? ChromeTraceWriter::kModelPid
                   : is_serve_cat(r.cat) ? ChromeTraceWriter::kServePid
                                         : ChromeTraceWriter::kSearchPid;
    if (r.trace.valid() && !r.simulated) {
      char hex[33];
      r.trace.format(hex);
      char args[64];
      std::snprintf(args, sizeof args, "{\"trace_id\":\"%s\"}", hex);
      w.complete_event(r.name, r.simulated ? "model" : r.cat, pid, r.tid,
                       r.start_s * 1e6, r.dur_s * 1e6, args);
    } else {
      w.complete_event(r.name, r.simulated ? "model" : r.cat, pid, r.tid,
                       r.start_s * 1e6, r.dur_s * 1e6);
    }
  }
}

std::string SpanTracer::to_chrome_trace_json() const {
  ChromeTraceWriter w;
  append_chrome_trace(w);
  return w.finish();
}

}  // namespace kf
