// DecisionLog — bounded ring of fusion accept/reject decisions.
//
// Every structural decision the search takes — a greedy merge, an HGGA
// crossover group inheritance, a mutation edit, a local-polish move — is
// recorded with its cost delta and the dominant TimeBreakdown component of
// the resulting group's simulated launch, so `kfc explain <kernel>` can
// replay why a kernel ended up in its final group.
//
// The log is a fixed-capacity ring: recording never allocates (members are
// stored inline, capped at kMaxMembers) and old decisions are overwritten
// once the ring wraps — `recorded()` vs `size()` exposes the truncation.
// Reached through the nullable Telemetry context like every sink: a null
// `decisions` pointer costs one branch per decision site.
//
// Cost-delta semantics per site (negative = the decision reduced projected
// plan cost):
//   GreedyMerge / GreedyReject   merged cost - (cost a + cost b)
//   CrossoverInject              group cost - sum of members' original times
//   MutationMerge                merged cost - (cost a + cost b)
//   MutationSplit                sum of singleton costs - group cost
//   MutationMove                 grown target cost - (old target + moved
//                                kernel's original time)
//   PolishMerge / PolishMove / PolishSplit
//                                new plan cost - old plan cost (exact)
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "ir/ids.hpp"
#include "telemetry/request_context.hpp"

namespace kf {

class FlightRecorder;

class DecisionLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr int kMaxMembers = 16;

  enum class Site : std::uint8_t {
    GreedyMerge,
    GreedyReject,
    CrossoverInject,
    MutationMerge,
    MutationSplit,
    MutationMove,
    PolishMerge,
    PolishMove,
    PolishSplit,
  };
  static const char* to_string(Site site) noexcept;

  struct Decision {
    std::uint64_t seq = 0;  ///< global order, 0-based, never reused
    Site site = Site::GreedyMerge;
    bool accepted = false;
    std::int16_t member_count = 0;  ///< true group size (may exceed kMaxMembers)
    KernelId members[kMaxMembers] = {};
    double cost_delta_s = 0.0;
    const char* dominant = "";  ///< dominant TimeBreakdown component, "" unknown
    TraceId trace;  ///< owning request trace at record time; null = none

    bool involves(KernelId k) const noexcept;
  };

  explicit DecisionLog(std::size_t capacity = kDefaultCapacity);

  /// Records one decision; `members` is the affected group (first
  /// kMaxMembers kept inline, the count always exact). Never allocates.
  void record(Site site, bool accepted, std::span<const KernelId> members,
              double cost_delta_s, const char* dominant = "");

  long recorded() const;     ///< decisions ever recorded
  std::size_t size() const;  ///< decisions currently held (<= capacity)
  long dropped() const;      ///< decisions evicted by ring wrap (exact)
  std::size_t capacity() const noexcept { return capacity_; }

  /// Tees every future decision into the flight recorder's ring (the
  /// black box keeps its own bounded copy that survives as an incident
  /// bundle). The recorder must outlive this log.
  void set_recorder(FlightRecorder* recorder) noexcept { recorder_ = recorder; }

  /// Held decisions in seq order (oldest surviving first).
  std::vector<Decision> snapshot() const;

  /// Held decisions whose member list contains `k`, in seq order.
  std::vector<Decision> involving(KernelId k) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Decision> ring_;
  std::uint64_t next_seq_ = 0;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace kf
