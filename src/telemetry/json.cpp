#include "telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace kf {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  // Fast path: event types, keys and hex trace ids never need escaping, so
  // one scan + one bulk append covers almost every string on the wide-event
  // emission path.
  std::size_t clean = 0;
  while (clean < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[clean]);
    if (c == '"' || c == '\\' || c < 0x20) break;
    ++clean;
  }
  out.append(text.data(), clean);
  text.remove_prefix(clean);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null keeps consumers parsing
    return;
  }
  // std::to_chars, not snprintf: number formatting is the hot path of the
  // per-request wide event, and to_chars is an order of magnitude cheaper.
  char buf[32];
  // Integers print as integers so counters read naturally.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    const auto r = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<long long>(v));
    out.append(buf, r.ptr);
    return;
  }
  // Shortest form that parses back to exactly `v` (round-trip safe).
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

// ---- accessors ----

namespace {
[[noreturn]] void kind_error(const char* wanted) {
  throw RuntimeError(std::string("JSON value is not a ") + wanted);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) kind_error("number");
  return number_;
}

long JsonValue::as_long() const { return std::lround(as_number()); }

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) kind_error("array");
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::Object) kind_error("object");
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) kind_error("array");
  array_.push_back(std::move(v));
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) kind_error("object");
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string_ : fallback;
}

// ---- writer ----

void JsonValue::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: append_json_number(out, number_); break;
    case Kind::String: append_json_string(out, string_); break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_json_string(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::to_string(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---- parser ----

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw RuntimeError(strprintf("JSON parse error at offset %zu: %s", pos_,
                                 what.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(strprintf("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue();
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  /// Reads the four hex digits of a \u escape (the backslash and 'u' have
  /// already been consumed) and returns the 16-bit code unit.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        // RFC 8259: control characters must be escaped inside strings. A
        // raw one here is a truncated/corrupted writer, not valid input.
        if (static_cast<unsigned char>(c) < 0x20) {
          --pos_;
          fail("raw control character in string");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be immediately followed by an escaped
            // low surrogate; together they name one supplementary-plane
            // code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > before;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail("bad number");
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. an error here).
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail("bad number exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    // Out-of-range literals ("1e999") overflow to +-inf; JSON has no way
    // to round-trip a non-finite value, so reject rather than absorb it.
    if (!std::isfinite(v)) fail("number out of double range");
    return JsonValue(v);
  }
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace kf
