#include "telemetry/slo.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace kf {

namespace {

const char* kRungNames[SloTracker::kNumRungs] = {
    "store_hit", "polished_stored", "full_search", "trivial_floor"};

double burn(long bad, long total, double budget) {
  if (total == 0 || budget <= 0.0) return 0.0;
  const double rate = static_cast<double>(bad) / static_cast<double>(total);
  return rate / budget;
}

}  // namespace

SloTracker::SloTracker() : SloTracker(Config()) {}

SloTracker::SloTracker(Config config) : config_(std::move(config)) {
  KF_REQUIRE(config_.capacity > 0, "SloTracker capacity must be positive");
  KF_REQUIRE(!config_.windows_s.empty(), "SloTracker needs >= 1 window");
  for (double w : config_.windows_s)
    KF_REQUIRE(w > 0.0, "SloTracker windows must be positive");
  std::sort(config_.windows_s.begin(), config_.windows_s.end());
  ring_.reserve(std::min<std::size_t>(config_.capacity, 4096));
}

void SloTracker::record(const Sample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < config_.capacity) {
    ring_.push_back(sample);
  } else {
    ring_[static_cast<std::size_t>(recorded_) % config_.capacity] = sample;
  }
  ++recorded_;
  if (!sample.deadline_met) ++total_misses_;
  if (sample.degraded) ++total_degraded_;
  if (config_.latency_target_s > 0.0 &&
      sample.latency_s > config_.latency_target_s)
    ++total_slow_;
  if (sample.rung >= 0 && sample.rung < kNumRungs) ++rung_count_[sample.rung];
}

long SloTracker::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

SloTracker::Report SloTracker::report(double now_s) const {
  Report out;
  std::lock_guard<std::mutex> lock(mu_);
  out.config = config_;
  out.total_requests = recorded_;
  out.total_deadline_misses = total_misses_;
  out.total_degraded = total_degraded_;
  out.total_slow = total_slow_;
  for (int r = 0; r < kNumRungs; ++r) out.rung_count[r] = rung_count_[r];
  out.evicted = std::max<long>(
      0, recorded_ - static_cast<long>(std::min<std::size_t>(
             static_cast<std::size_t>(recorded_), config_.capacity)));

  for (double window_s : config_.windows_s) {
    WindowReport w;
    w.window_s = window_s;
    const double cutoff = now_s - window_s;
    for (const Sample& s : ring_) {
      if (s.t_s < cutoff || s.t_s > now_s) continue;
      ++w.requests;
      if (!s.deadline_met) ++w.deadline_misses;
      if (s.degraded) ++w.degraded;
      if (config_.latency_target_s > 0.0 &&
          s.latency_s > config_.latency_target_s)
        ++w.slow;
      if (s.rung >= 0 && s.rung < kNumRungs) ++w.rung_count[s.rung];
    }
    w.deadline_burn =
        burn(w.deadline_misses, w.requests, config_.deadline_miss_budget);
    w.degraded_burn = burn(w.degraded, w.requests, config_.degraded_budget);
    w.latency_burn = config_.latency_target_s > 0.0
                         ? burn(w.slow, w.requests, config_.slow_budget)
                         : 0.0;
    w.worst_burn =
        std::max({w.deadline_burn, w.degraded_burn, w.latency_burn});
    out.worst_burn = std::max(out.worst_burn, w.worst_burn);
    out.windows.push_back(w);
  }
  return out;
}

JsonValue SloTracker::Report::to_json() const {
  JsonValue root = JsonValue::object();
  JsonValue cfg = JsonValue::object();
  cfg.set("deadline_miss_budget", config.deadline_miss_budget);
  cfg.set("degraded_budget", config.degraded_budget);
  cfg.set("latency_target_s", config.latency_target_s);
  cfg.set("slow_budget", config.slow_budget);
  JsonValue windows_s = JsonValue::array();
  for (double w : config.windows_s) windows_s.push_back(w);
  cfg.set("windows_s", std::move(windows_s));
  root.set("config", std::move(cfg));

  root.set("total_requests", static_cast<double>(total_requests));
  root.set("total_deadline_misses", static_cast<double>(total_deadline_misses));
  root.set("total_degraded", static_cast<double>(total_degraded));
  root.set("total_slow", static_cast<double>(total_slow));
  root.set("evicted", static_cast<double>(evicted));
  JsonValue rungs = JsonValue::object();
  for (int r = 0; r < kNumRungs; ++r)
    rungs.set(kRungNames[r], static_cast<double>(rung_count[r]));
  root.set("rung_count", std::move(rungs));

  JsonValue window_list = JsonValue::array();
  for (const WindowReport& w : windows) {
    JsonValue entry = JsonValue::object();
    entry.set("window_s", w.window_s);
    entry.set("requests", static_cast<double>(w.requests));
    entry.set("deadline_misses", static_cast<double>(w.deadline_misses));
    entry.set("degraded", static_cast<double>(w.degraded));
    entry.set("slow", static_cast<double>(w.slow));
    entry.set("deadline_burn", w.deadline_burn);
    entry.set("degraded_burn", w.degraded_burn);
    entry.set("latency_burn", w.latency_burn);
    entry.set("worst_burn", w.worst_burn);
    window_list.push_back(std::move(entry));
  }
  root.set("windows", std::move(window_list));
  root.set("worst_burn", worst_burn);
  return root;
}

SloTracker::Report SloTracker::from_json(const JsonValue& v) {
  Report out;
  const JsonValue* cfg = v.find("config");
  KF_CHECK(cfg != nullptr, "slo block: missing \"config\"");
  out.config.deadline_miss_budget = cfg->number_or("deadline_miss_budget", 0.0);
  out.config.degraded_budget = cfg->number_or("degraded_budget", 0.0);
  out.config.latency_target_s = cfg->number_or("latency_target_s", 0.0);
  out.config.slow_budget = cfg->number_or("slow_budget", 0.0);
  out.config.windows_s.clear();
  if (const JsonValue* windows_s = cfg->find("windows_s");
      windows_s != nullptr && windows_s->is_array()) {
    for (const JsonValue& e : windows_s->items())
      if (e.is_number()) out.config.windows_s.push_back(e.as_number());
  }

  out.total_requests = static_cast<long>(v.number_or("total_requests", 0.0));
  out.total_deadline_misses =
      static_cast<long>(v.number_or("total_deadline_misses", 0.0));
  out.total_degraded = static_cast<long>(v.number_or("total_degraded", 0.0));
  out.total_slow = static_cast<long>(v.number_or("total_slow", 0.0));
  out.evicted = static_cast<long>(v.number_or("evicted", 0.0));
  if (const JsonValue* rungs = v.find("rung_count"); rungs != nullptr) {
    for (int r = 0; r < kNumRungs; ++r)
      out.rung_count[r] =
          static_cast<long>(rungs->number_or(kRungNames[r], 0.0));
  }
  if (const JsonValue* windows = v.find("windows");
      windows != nullptr && windows->is_array()) {
    for (const JsonValue& entry : windows->items()) {
      WindowReport w;
      w.window_s = entry.number_or("window_s", 0.0);
      w.requests = static_cast<long>(entry.number_or("requests", 0.0));
      w.deadline_misses =
          static_cast<long>(entry.number_or("deadline_misses", 0.0));
      w.degraded = static_cast<long>(entry.number_or("degraded", 0.0));
      w.slow = static_cast<long>(entry.number_or("slow", 0.0));
      w.deadline_burn = entry.number_or("deadline_burn", 0.0);
      w.degraded_burn = entry.number_or("degraded_burn", 0.0);
      w.latency_burn = entry.number_or("latency_burn", 0.0);
      w.worst_burn = entry.number_or("worst_burn", 0.0);
      out.windows.push_back(w);
    }
  }
  out.worst_burn = v.number_or("worst_burn", 0.0);
  return out;
}

std::string SloTracker::Report::render() const {
  std::string out;
  out += strprintf("slo: %ld requests, %ld deadline misses, %ld degraded",
                   total_requests, total_deadline_misses, total_degraded);
  if (config.latency_target_s > 0.0)
    out += strprintf(", %ld slow (> %.3fs)", total_slow,
                     config.latency_target_s);
  if (evicted > 0)
    out += strprintf(" (%ld samples evicted from windows)", evicted);
  out += '\n';
  out += strprintf(
      "  budgets: deadline-miss %.4f, degraded %.4f%s\n",
      config.deadline_miss_budget, config.degraded_budget,
      config.latency_target_s > 0.0
          ? strprintf(", slow %.4f", config.slow_budget).c_str()
          : "");
  out += strprintf("  %-10s %9s %7s %9s %9s %9s %9s\n", "window", "requests",
                   "misses", "dl-burn", "deg-burn", "lat-burn", "worst");
  for (const WindowReport& w : windows) {
    out += strprintf("  %-10s %9ld %7ld %9.3f %9.3f %9.3f %9.3f\n",
                     strprintf("%gs", w.window_s).c_str(), w.requests,
                     w.deadline_misses, w.deadline_burn, w.degraded_burn,
                     w.latency_burn, w.worst_burn);
  }
  out += strprintf("  worst burn rate: %.3f%s\n", worst_burn,
                   worst_burn > 1.0 ? "  (error budget burning)" : "");
  return out;
}

}  // namespace kf
