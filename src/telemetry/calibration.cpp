#include "telemetry/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace kf {
namespace {

// Same deterministic generator family as MetricsRegistry's histogram
// reservoirs: fixed seed, so two runs over the same sample stream keep the
// same percentile reservoir bit for bit.
constexpr std::uint64_t kLcgSeed = 0x243f6a8885a308d3ULL;

double sorted_percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

const char* CalibrationTracker::bucket_label(int bucket) noexcept {
  switch (bucket) {
    case 0: return "2";
    case 1: return "3";
    case 2: return "4";
    case 3: return "5-8";
    default: return "9+";
  }
}

int CalibrationTracker::bucket_of(std::size_t group_size) noexcept {
  if (group_size <= 2) return 0;
  if (group_size == 3) return 1;
  if (group_size == 4) return 2;
  if (group_size <= 8) return 3;
  return 4;
}

CalibrationTracker::CalibrationTracker(const Options& options)
    : options_(options) {
  KF_REQUIRE(options_.drift_band > 0.0, "drift band must be positive");
  KF_REQUIRE(options_.min_samples > 0, "min_samples must be positive");
  KF_REQUIRE(options_.reservoir > 0, "reservoir capacity must be positive");
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].reservoir.reserve(options_.reservoir);
    buckets_[b].lcg = kLcgSeed + static_cast<std::uint64_t>(b);
  }
}

std::optional<CalibrationTracker::Drift> CalibrationTracker::record(
    std::size_t group_size, double projected_s, double simulated_s) {
  if (!(simulated_s > 0.0) || !std::isfinite(projected_s)) return std::nullopt;
  const double rel = (projected_s - simulated_s) / simulated_s;
  if (!std::isfinite(rel)) return std::nullopt;

  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[bucket_of(group_size)];
  if (b.count == 0) {
    b.min = b.max = rel;
  } else {
    b.min = std::min(b.min, rel);
    b.max = std::max(b.max, rel);
  }
  ++b.count;
  b.sum += rel;
  b.sum_abs += std::abs(rel);
  if (rel > 0.0) ++b.over;
  if (rel < 0.0) ++b.under;
  if (b.reservoir.size() < options_.reservoir) {
    b.reservoir.push_back(rel);
  } else {
    // Algorithm R: replace a random slot with probability capacity/count.
    b.lcg = b.lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto slot = static_cast<std::size_t>(
        (b.lcg >> 17) % static_cast<std::uint64_t>(b.count));
    if (slot < b.reservoir.size()) b.reservoir[slot] = rel;
  }

  const double mean = b.sum / static_cast<double>(b.count);
  if (!b.drift && b.count >= options_.min_samples &&
      std::abs(mean) > options_.drift_band) {
    b.drift = true;
    Drift d;
    d.bucket = bucket_of(group_size);
    d.count = b.count;
    d.mean_rel_error = mean;
    return d;
  }
  return std::nullopt;
}

double CalibrationTracker::BucketStats::sign_bias() const noexcept {
  if (count == 0) return 0.0;
  return static_cast<double>(overestimates - underestimates) /
         static_cast<double>(count);
}

std::vector<CalibrationTracker::BucketStats> CalibrationTracker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BucketStats> out;
  for (int i = 0; i < kBuckets; ++i) {
    const Bucket& b = buckets_[i];
    if (b.count == 0) continue;
    BucketStats s;
    s.label = bucket_label(i);
    s.count = b.count;
    s.mean_rel_error = b.sum / static_cast<double>(b.count);
    s.mean_abs_rel_error = b.sum_abs / static_cast<double>(b.count);
    s.max_abs_rel_error = std::max(std::abs(b.min), std::abs(b.max));
    s.min_rel_error = b.min;
    s.max_rel_error = b.max;
    s.overestimates = b.over;
    s.underestimates = b.under;
    s.drift = b.drift;
    std::vector<double> rel = b.reservoir;
    s.p50_rel_error = sorted_percentile(rel, 50.0);
    std::vector<double> abs_rel(b.reservoir.size());
    for (std::size_t j = 0; j < b.reservoir.size(); ++j)
      abs_rel[j] = std::abs(b.reservoir[j]);
    s.p90_abs_rel_error = sorted_percentile(abs_rel, 90.0);
    out.push_back(s);
  }
  return out;
}

long CalibrationTracker::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  long total = 0;
  for (const Bucket& b : buckets_) total += b.count;
  return total;
}

bool CalibrationTracker::any_drift() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Bucket& b : buckets_)
    if (b.drift) return true;
  return false;
}

JsonValue CalibrationTracker::to_json() const {
  JsonValue block = JsonValue::object();
  block.set("samples", samples());
  block.set("drift_band", options_.drift_band);
  block.set("min_samples", options_.min_samples);
  block.set("drift", any_drift());
  JsonValue buckets = JsonValue::array();
  for (const BucketStats& s : stats()) {
    JsonValue b = JsonValue::object();
    b.set("group_size", s.label);
    b.set("count", s.count);
    b.set("mean_rel_error", s.mean_rel_error);
    b.set("mean_abs_rel_error", s.mean_abs_rel_error);
    b.set("max_abs_rel_error", s.max_abs_rel_error);
    b.set("min_rel_error", s.min_rel_error);
    b.set("max_rel_error", s.max_rel_error);
    b.set("p50_rel_error", s.p50_rel_error);
    b.set("p90_abs_rel_error", s.p90_abs_rel_error);
    b.set("overestimates", s.overestimates);
    b.set("underestimates", s.underestimates);
    b.set("sign_bias", s.sign_bias());
    b.set("drift", s.drift);
    buckets.push_back(std::move(b));
  }
  block.set("buckets", std::move(buckets));
  return block;
}

}  // namespace kf
