#include "telemetry/prometheus.hpp"

#include <cmath>
#include <map>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/fs_io.hpp"
#include "util/string_util.hpp"

namespace kf {

namespace {

void append_escaped_label_value(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// `{k1="v1",k2="v2"}` or "" for label-less series; `extra` appends one
/// more pair (the histogram `le`).
std::string label_block(const MetricLabels& labels, std::string_view extra_key,
                        std::string_view extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name(k).substr(3);  // labels get no kf_ prefix
    out += "=\"";
    append_escaped_label_value(out, v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped_label_value(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15)
    return strprintf("%lld", static_cast<long long>(v));
  return strprintf("%.9g", v);
}

std::string exemplar_suffix(const MetricsRegistry::Bucket& b) {
  if (!b.exemplar_trace.valid()) return "";
  return strprintf(" # {trace_id=\"%s\"} %s", b.exemplar_trace.to_hex().c_str(),
                   format_value(b.exemplar_value).c_str());
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "kf_";
  out.reserve(name.size() + 3);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_render(const MetricsRegistry& metrics) {
  const MetricsRegistry::Snapshot snap = metrics.snapshot();
  std::string out;
  out.reserve(4096);

  // Group by exposition name so each family gets exactly one TYPE line even
  // when its labeled series do not sort adjacently in the snapshot.
  std::map<std::string, std::vector<const MetricsRegistry::Snapshot::Counter*>>
      counters;
  for (const auto& c : snap.counters)
    counters[prometheus_name(c.name)].push_back(&c);
  for (const auto& [name, series] : counters) {
    out += strprintf("# HELP %s kfc counter %s\n", name.c_str(),
                     series.front()->name.c_str());
    out += strprintf("# TYPE %s counter\n", name.c_str());
    for (const auto* c : series)
      out += strprintf("%s%s %ld\n", name.c_str(),
                       label_block(c->labels, "", "").c_str(), c->value);
  }

  std::map<std::string, std::vector<const MetricsRegistry::Snapshot::Gauge*>>
      gauges;
  for (const auto& g : snap.gauges)
    gauges[prometheus_name(g.name)].push_back(&g);
  for (const auto& [name, series] : gauges) {
    out += strprintf("# HELP %s kfc gauge %s\n", name.c_str(),
                     series.front()->name.c_str());
    out += strprintf("# TYPE %s gauge\n", name.c_str());
    for (const auto* g : series)
      out += strprintf("%s%s %s\n", name.c_str(),
                       label_block(g->labels, "", "").c_str(),
                       format_value(g->value).c_str());
  }

  std::map<std::string, std::vector<const MetricsRegistry::Snapshot::Histo*>>
      histograms;
  for (const auto& h : snap.histograms)
    histograms[prometheus_name(h.name)].push_back(&h);
  for (const auto& [name, series] : histograms) {
    out += strprintf("# HELP %s kfc histogram %s\n", name.c_str(),
                     series.front()->name.c_str());
    out += strprintf("# TYPE %s histogram\n", name.c_str());
    for (const auto* h : series) {
      long cumulative = 0;
      if (!h->snap.buckets.empty()) {
        for (const auto& b : h->snap.buckets) {
          cumulative += b.count;
          out += strprintf(
              "%s_bucket%s %ld%s\n", name.c_str(),
              label_block(h->labels, "le", format_value(b.le)).c_str(),
              cumulative, exemplar_suffix(b).c_str());
        }
      } else {
        // No declared buckets: the lone +Inf bucket keeps the family a
        // well-formed histogram.
        out += strprintf("%s_bucket%s %zu\n", name.c_str(),
                         label_block(h->labels, "le", "+Inf").c_str(),
                         h->snap.count);
      }
      out += strprintf("%s_sum%s %s\n", name.c_str(),
                       label_block(h->labels, "", "").c_str(),
                       format_value(h->snap.sum).c_str());
      out += strprintf("%s_count%s %zu\n", name.c_str(),
                       label_block(h->labels, "", "").c_str(), h->snap.count);
    }
  }

  out += "# EOF\n";
  return out;
}

void prometheus_write_file(const MetricsRegistry& metrics,
                           const std::string& path) {
  // Non-durable atomic replace: a crash loses at most the last snapshot,
  // and concurrent readers never observe a torn document.
  write_file_atomic(path, prometheus_render(metrics), /*durable=*/false);
}

}  // namespace kf
