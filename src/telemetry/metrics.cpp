#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "util/error.hpp"

namespace kf {

std::string MetricsRegistry::series_key(std::string_view name,
                                        const MetricLabels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

void MetricsRegistry::count(std::string_view name, long delta,
                            const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Hot path: the serving counters are label-less, so an existing series is
  // found heterogeneously with zero allocations; the key string is only
  // built on first insert (or when labels are present).
  if (labels.empty()) {
    if (const auto it = counters_.find(name); it != counters_.end()) {
      it->second.value += delta;
      return;
    }
  }
  auto [it, inserted] = counters_.try_emplace(series_key(name, labels));
  if (inserted) {
    it->second.name = std::string(name);
    it->second.labels = labels;
  }
  it->second.value += delta;
}

void MetricsRegistry::gauge(std::string_view name, double value,
                            const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (labels.empty()) {
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
      it->second.value = value;
      return;
    }
  }
  auto [it, inserted] = gauges_.try_emplace(series_key(name, labels));
  if (inserted) {
    it->second.name = std::string(name);
    it->second.labels = labels;
  }
  it->second.value = value;
}

void MetricsRegistry::declare_buckets(std::string_view name,
                                      std::vector<double> upper_bounds) {
  KF_REQUIRE(!upper_bounds.empty(), "declare_buckets: no bounds");
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    KF_REQUIRE(std::isfinite(upper_bounds[i]),
               "declare_buckets: bounds must be finite (+Inf is implicit)");
    KF_REQUIRE(i == 0 || upper_bounds[i - 1] < upper_bounds[i],
               "declare_buckets: bounds must be strictly increasing");
  }
  std::vector<Bucket> buckets(upper_bounds.size() + 1);
  for (std::size_t i = 0; i < upper_bounds.size(); ++i)
    buckets[i].le = upper_bounds[i];
  buckets.back().le = std::numeric_limits<double>::infinity();

  std::lock_guard<std::mutex> lock(mutex_);
  bucket_bounds_[std::string(name)] = std::move(upper_bounds);
  // Retrofit series that already exist under this name with empty bucket
  // vectors; earlier samples are not replayed (declare-before-observe for
  // exact counts).
  for (auto& [key, s] : histograms_) {
    if (s.name == name && s.value.buckets.empty()) s.value.buckets = buckets;
  }
}

void MetricsRegistry::observe(std::string_view name, double sample,
                              const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labels.empty() ? histograms_.find(name) : histograms_.end();
  if (it == histograms_.end()) {
    bool inserted = false;
    std::tie(it, inserted) = histograms_.try_emplace(series_key(name, labels));
    if (inserted) {
      it->second.name = std::string(name);
      it->second.labels = labels;
      if (const auto bounds = bucket_bounds_.find(name);
          bounds != bucket_bounds_.end()) {
        std::vector<Bucket>& buckets = it->second.value.buckets;
        buckets.resize(bounds->second.size() + 1);
        for (std::size_t i = 0; i < bounds->second.size(); ++i)
          buckets[i].le = bounds->second[i];
        buckets.back().le = std::numeric_limits<double>::infinity();
      }
    }
  }
  Histogram& h = it->second.value;
  if (!h.buckets.empty()) {
    // First bucket whose upper bound contains the sample; the tail +Inf
    // bucket catches everything (NaN included — better one odd bucket than
    // a lost observation).
    std::size_t b = 0;
    while (b + 1 < h.buckets.size() && !(sample <= h.buckets[b].le)) ++b;
    ++h.buckets[b].count;
    if (const TraceId trace = current_trace(); trace.valid()) {
      h.buckets[b].exemplar_trace = trace;
      h.buckets[b].exemplar_value = sample;
    }
  }
  if (h.count == 0) {
    h.min = h.max = sample;
  } else {
    h.min = std::min(h.min, sample);
    h.max = std::max(h.max, sample);
  }
  h.sum += sample;
  ++h.count;
  if (h.reservoir.size() < kReservoirCapacity) {
    h.reservoir.push_back(sample);
  } else {
    // Algorithm R with a deterministic LCG: keep each of the first n
    // samples with probability capacity/n.
    h.lcg = h.lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t slot = (h.lcg >> 17) % h.count;
    if (slot < kReservoirCapacity) h.reservoir[slot] = sample;
  }
}

long MetricsRegistry::counter_value(std::string_view name,
                                    const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      labels.empty() ? counters_.find(name) : counters_.find(series_key(name, labels));
  return it == counters_.end() ? 0 : it->second.value;
}

double MetricsRegistry::gauge_value(std::string_view name,
                                    const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      labels.empty() ? gauges_.find(name) : gauges_.find(series_key(name, labels));
  return it == gauges_.end() ? 0.0 : it->second.value;
}

double MetricsRegistry::HistogramSnapshot::percentile(double p) const {
  KF_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  // Pinned small-count behaviour: n=0 -> 0.0 (no data, no throw), n=1 ->
  // the sample for every p, n=2 -> linear interpolation between the two.
  if (samples.empty()) return 0.0;
  // The extremes are tracked exactly even past reservoir overflow, so p=0
  // and p=100 report the true min/max rather than reservoir survivors.
  if (p == 0.0 && count > 0) return min;
  if (p == 100.0 && count > 0) return max;
  if (samples.size() == 1) return samples[0];
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::histogram(
    std::string_view name, const MetricLabels& labels) const {
  HistogramSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = labels.empty() ? histograms_.find(name)
                                   : histograms_.find(series_key(name, labels));
    if (it == histograms_.end()) return snap;
    const Histogram& h = it->second.value;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    snap.samples = h.reservoir;
    snap.buckets = h.buckets;
  }
  std::sort(snap.samples.begin(), snap.samples.end());
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  std::map<std::string, Series<long>, std::less<>> counters;
  std::map<std::string, Series<double>, std::less<>> gauges;
  std::map<std::string, Series<Histogram>, std::less<>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters = counters_;
    gauges = gauges_;
    histograms = histograms_;
  }
  out.counters.reserve(counters.size());
  for (const auto& [key, s] : counters)
    out.counters.push_back({s.name, s.labels, s.value});
  out.gauges.reserve(gauges.size());
  for (const auto& [key, s] : gauges)
    out.gauges.push_back({s.name, s.labels, s.value});
  out.histograms.reserve(histograms.size());
  for (const auto& [key, s] : histograms) {
    HistogramSnapshot snap;
    snap.count = s.value.count;
    snap.sum = s.value.sum;
    snap.min = s.value.min;
    snap.max = s.value.max;
    snap.samples = s.value.reservoir;
    snap.buckets = s.value.buckets;
    std::sort(snap.samples.begin(), snap.samples.end());
    out.histograms.push_back({s.name, s.labels, std::move(snap)});
  }
  return out;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

namespace {

JsonValue labels_json(const MetricLabels& labels) {
  JsonValue obj = JsonValue::object();
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [k, v] : sorted) obj.set(k, v);
  return obj;
}

}  // namespace

JsonValue MetricsRegistry::to_json() const {
  // Snapshot under the lock, render outside it.
  std::map<std::string, Series<long>, std::less<>> counters;
  std::map<std::string, Series<double>, std::less<>> gauges;
  std::map<std::string, Series<Histogram>, std::less<>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters = counters_;
    gauges = gauges_;
    histograms = histograms_;
  }

  JsonValue root = JsonValue::object();
  JsonValue counter_list = JsonValue::array();
  for (const auto& [key, s] : counters) {
    JsonValue entry = JsonValue::object();
    entry.set("name", s.name);
    entry.set("labels", labels_json(s.labels));
    entry.set("value", s.value);
    counter_list.push_back(std::move(entry));
  }
  root.set("counters", std::move(counter_list));

  JsonValue gauge_list = JsonValue::array();
  for (const auto& [key, s] : gauges) {
    JsonValue entry = JsonValue::object();
    entry.set("name", s.name);
    entry.set("labels", labels_json(s.labels));
    entry.set("value", s.value);
    gauge_list.push_back(std::move(entry));
  }
  root.set("gauges", std::move(gauge_list));

  JsonValue hist_list = JsonValue::array();
  for (const auto& [key, s] : histograms) {
    HistogramSnapshot snap;
    snap.count = s.value.count;
    snap.sum = s.value.sum;
    snap.min = s.value.min;
    snap.max = s.value.max;
    snap.samples = s.value.reservoir;
    std::sort(snap.samples.begin(), snap.samples.end());

    JsonValue entry = JsonValue::object();
    entry.set("name", s.name);
    entry.set("labels", labels_json(s.labels));
    entry.set("count", static_cast<double>(snap.count));
    entry.set("sum", snap.sum);
    entry.set("min", snap.min);
    entry.set("max", snap.max);
    entry.set("mean", snap.mean());
    entry.set("p50", snap.percentile(50));
    entry.set("p90", snap.percentile(90));
    entry.set("p99", snap.percentile(99));
    if (!snap.buckets.empty()) {
      JsonValue buckets = JsonValue::array();
      for (const Bucket& b : snap.buckets) {
        JsonValue bucket = JsonValue::object();
        // +Inf is not a JSON number; the final bucket is always +Inf so a
        // missing "le" marks it unambiguously for consumers.
        if (std::isfinite(b.le)) bucket.set("le", b.le);
        bucket.set("count", static_cast<double>(b.count));
        if (b.exemplar_trace.valid()) {
          bucket.set("exemplar_trace", b.exemplar_trace.to_hex());
          bucket.set("exemplar_value", b.exemplar_value);
        }
        buckets.push_back(std::move(bucket));
      }
      entry.set("buckets", std::move(buckets));
    }
    hist_list.push_back(std::move(entry));
  }
  root.set("histograms", std::move(hist_list));
  return root;
}

std::string MetricsRegistry::to_json_string(int indent) const {
  return to_json().to_string(indent);
}

}  // namespace kf
