// Telemetry — the nullable context instrumented code carries.
//
// One struct bundles the three observability sinks so a single pointer
// threads through the search, objective and CLI layers:
//
//   * metrics:  numeric series (counters/gauges/histograms) -> --metrics
//   * trace:    structured JSONL event log                  -> --events
//   * progress: human heartbeat every N generations          -> --progress
//
// The contract for instrumented code is "check, then record":
//
//   if (telemetry != nullptr && telemetry->metrics != nullptr)
//     telemetry->metrics->count("objective.evaluations");
//   if (telemetry != nullptr && telemetry->wants_trace())
//     telemetry->trace->emit("generation", [&](TraceEvent& e) { ... });
//
// so a null context (the default everywhere) costs one branch per hook and
// allocates nothing — the overhead budget DESIGN.md commits to.
#pragma once

#include <iosfwd>

#include "telemetry/metrics.hpp"
#include "telemetry/trace_log.hpp"

namespace kf {

struct Telemetry {
  MetricsRegistry* metrics = nullptr;  ///< null: no numeric series recorded
  TraceLog* trace = nullptr;           ///< null or disabled: no events
  int progress_every = 0;              ///< heartbeat cadence in generations; 0: off
  std::ostream* progress = nullptr;    ///< heartbeat sink; null: std::cerr

  bool wants_trace() const noexcept { return trace != nullptr && trace->enabled(); }
  bool wants_progress() const noexcept { return progress_every > 0; }
  bool active() const noexcept {
    return metrics != nullptr || wants_trace() || wants_progress();
  }
};

}  // namespace kf
