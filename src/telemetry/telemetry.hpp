// Telemetry — the nullable context instrumented code carries.
//
// One struct bundles the observability sinks so a single pointer threads
// through the search, objective and CLI layers:
//
//   * metrics:     numeric series (counters/gauges/histograms) -> --metrics
//   * trace:       structured JSONL event log                  -> --events
//   * progress:    human heartbeat every N generations         -> --progress
//   * spans:       RAII span profiler                          -> --spans / kfc profile
//   * decisions:   fusion decision provenance ring             -> kfc explain
//   * calibration: projection-vs-simulator error tracker       -> metrics v2
//   * slo:         rolling-window SLO / burn-rate tracker      -> kfc slo / metrics v3
//   * recorder:    always-on black-box flight recorder ring    -> incident bundles / kfc postmortem
//
// The contract for instrumented code is "check, then record":
//
//   if (telemetry != nullptr && telemetry->metrics != nullptr)
//     telemetry->metrics->count("objective.evaluations");
//   if (telemetry != nullptr && telemetry->wants_trace())
//     telemetry->trace->emit("generation", [&](TraceEvent& e) { ... });
//   SpanTracer::Scope s = scoped_span(telemetry, "hgga.generation");
//
// so a null context (the default everywhere) costs one branch per hook and
// allocates nothing — the overhead budget DESIGN.md commits to.
#pragma once

#include <iosfwd>

#include "telemetry/calibration.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/provenance.hpp"
#include "telemetry/request_context.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/trace_log.hpp"

namespace kf {

struct Telemetry {
  MetricsRegistry* metrics = nullptr;  ///< null: no numeric series recorded
  TraceLog* trace = nullptr;           ///< null or disabled: no events
  int progress_every = 0;              ///< heartbeat cadence in generations; 0: off
  std::ostream* progress = nullptr;    ///< heartbeat sink; null: std::cerr
  SpanTracer* spans = nullptr;         ///< null: no spans recorded
  DecisionLog* decisions = nullptr;    ///< null: no decision provenance
  CalibrationTracker* calibration = nullptr;  ///< null: no error tracking
  SloTracker* slo = nullptr;  ///< null: no SLO accounting (serving path)
  FlightRecorder* recorder = nullptr;  ///< null: no black-box ring (serving)

  bool wants_trace() const noexcept { return trace != nullptr && trace->enabled(); }
  bool wants_progress() const noexcept { return progress_every > 0; }
  bool wants_decisions() const noexcept { return decisions != nullptr; }
  bool active() const noexcept {
    return metrics != nullptr || wants_trace() || wants_progress() ||
           spans != nullptr || decisions != nullptr || calibration != nullptr ||
           slo != nullptr || recorder != nullptr;
  }
};

/// Null-safe span open: one branch and no allocation when `telemetry` (or
/// its tracer) is absent — the disabled-path contract above.
inline SpanTracer::Scope scoped_span(const Telemetry* telemetry,
                                     const char* name,
                                     const char* cat = "search") {
  if (telemetry == nullptr || telemetry->spans == nullptr)
    return SpanTracer::Scope();
  return telemetry->spans->span(name, cat);
}

}  // namespace kf
