#include "telemetry/trace_log.hpp"

#include <charconv>
#include <fstream>

#include "telemetry/request_context.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace kf {

TraceLog::TraceLog(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  KF_CHECK(static_cast<bool>(*file), "cannot open trace file '" << path << "'");
  owned_ = std::move(file);
  sink_ = owned_.get();
}

std::string TraceLog::begin_line(std::string_view type) const {
  std::string line;
  line.reserve(192);
  line += "{\"ts\":";
  char ts[40];
  const auto r = std::to_chars(ts, ts + sizeof(ts), watch_.elapsed_s(),
                               std::chars_format::fixed, 9);
  line.append(ts, r.ptr);
  // Events emitted while a request trace is active (serve path) stamp the
  // owning trace id, linking every store/search/fault event line to the
  // request's wide event.
  if (const TraceId trace = current_trace(); trace.valid()) {
    char hex[33];
    trace.format(hex);
    line += ",\"trace\":\"";
    line += hex;
    line += '"';
  }
  line += ",\"type\":";
  append_json_string(line, type);
  return line;
}

void TraceLog::write_line(std::string& line) {
  line += "}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  sink_->write(line.data(), static_cast<std::streamsize>(line.size()));
  // Flush per event: emission is generation/fault granular (not per
  // evaluation), and whole-line durability is what lets `tail -f` and
  // post-crash analysis consume the log.
  sink_->flush();
  ++events_;
}

}  // namespace kf
