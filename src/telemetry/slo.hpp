// SloTracker — rolling multi-window service-level objectives for the
// serving path.
//
// An SLO here is an *error budget*: "at most `deadline_miss_budget` of
// requests may miss their deadline", "at most `degraded_budget` may be
// served degraded", "at most `slow_budget` may exceed `latency_target_s`".
// The tracker keeps a bounded ring of per-request samples and evaluates
// each objective over several rolling windows at once (the classic
// fast-burn / slow-burn pair: a short window catches a sudden regression,
// a long window catches a slow leak).
//
// burn rate = (observed bad fraction in window) / (budgeted bad fraction)
//
// A burn rate of 1.0 means the service is consuming its error budget
// exactly as fast as it is earned; > 1.0 means the budget is burning down
// and the window's `worst_burn` feeds `kfc serve-batch`'s exit-code ladder
// (exit 7 when --slo-max-burn is exceeded) and the `kfc slo` report.
//
// Totals (requests / misses / degraded / slow) are exact counters that
// survive ring eviction, so `kfc slo` over a finished batch reconciles
// with the batch's own deadline-miss count; windows are best-effort over
// the last `capacity` samples. Time is injected by the caller (the serve
// clock), so fake-clock tests drive window eviction deterministically.
// Thread-safe; reached through the nullable Telemetry context like every
// sink (a null `slo` pointer costs one branch per request).
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace kf {

class SloTracker {
 public:
  struct Config {
    double deadline_miss_budget = 0.001;  ///< allowed deadline-miss fraction
    double degraded_budget = 0.05;        ///< allowed degraded-serve fraction
    double latency_target_s = 0.0;  ///< per-request latency target; <= 0: off
    double slow_budget = 0.05;      ///< allowed fraction above latency_target_s
    std::vector<double> windows_s = {60.0, 3600.0};  ///< rolling windows
    std::size_t capacity = std::size_t{1} << 16;     ///< sample ring bound
  };

  struct Sample {
    double t_s = 0.0;        ///< server-clock timestamp (monotone seconds)
    double latency_s = 0.0;
    bool deadline_met = true;
    bool degraded = false;
    int rung = 0;            ///< ServeRung ordinal (0..3)
  };

  static constexpr int kNumRungs = 4;

  struct WindowReport {
    double window_s = 0.0;
    long requests = 0;
    long deadline_misses = 0;
    long degraded = 0;
    long slow = 0;
    long rung_count[kNumRungs] = {};
    double deadline_burn = 0.0;
    double degraded_burn = 0.0;
    double latency_burn = 0.0;  ///< 0 when latency_target_s is off
    double worst_burn = 0.0;
  };

  struct Report {
    Config config;
    long total_requests = 0;
    long total_deadline_misses = 0;
    long total_degraded = 0;
    long total_slow = 0;
    long rung_count[kNumRungs] = {};
    long evicted = 0;  ///< samples aged out of the ring (windows undercount)
    std::vector<WindowReport> windows;
    double worst_burn = 0.0;  ///< max over windows and objectives

    JsonValue to_json() const;  ///< the kfc-metrics/v3 "slo" block
    std::string render() const; ///< human table (kfc slo / serve-batch)
  };

  SloTracker();  ///< default Config
  explicit SloTracker(Config config);

  void record(const Sample& sample);
  long recorded() const;

  /// Evaluates every objective over every window ending at `now_s`.
  Report report(double now_s) const;

  /// Rebuilds a Report from a kfc-metrics/v3 "slo" block (the inverse of
  /// Report::to_json); throws kf::RuntimeError on malformed input.
  static Report from_json(const JsonValue& v);

 private:
  Config config_;
  mutable std::mutex mu_;
  std::vector<Sample> ring_;
  long recorded_ = 0;
  long total_misses_ = 0;
  long total_degraded_ = 0;
  long total_slow_ = 0;
  long rung_count_[kNumRungs] = {};
};

}  // namespace kf
