// Minimal JSON document model for the telemetry layer.
//
// The metrics registry and the structured trace log emit JSON that bench
// harnesses and `kfc report` must read back, so the subsystem carries its
// own small, dependency-free reader/writer instead of leaning on an
// external library. Strict on parse (RFC 8259 values, no comments, no
// trailing commas); on write, object member order is preserved and numbers
// round-trip exactly (integers as integers, doubles with 17 significant
// digits). Non-finite doubles cannot be represented in JSON and are
// written as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kf {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double v) : kind_(Kind::Number), number_(v) {}
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(long long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  JsonValue(std::string_view s) : JsonValue(std::string(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  /// Parses one JSON document; throws kf::RuntimeError on malformed input
  /// or trailing non-whitespace.
  static JsonValue parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  // Typed accessors; throw kf::RuntimeError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  long as_long() const;  ///< as_number() rounded to nearest integer
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;    ///< array elements
  const std::vector<Member>& members() const;     ///< object members, in order

  // ---- building ----
  void push_back(JsonValue v);                    ///< array append
  JsonValue& set(std::string key, JsonValue v);   ///< object insert/replace
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// find(key)->as_number() with a default when absent/null.
  double number_or(std::string_view key, double fallback) const;
  /// find(key)->as_string() with a default when absent/null.
  std::string string_or(std::string_view key, std::string fallback) const;

  /// Serializes; indent < 0 renders compact, otherwise pretty-printed with
  /// `indent` spaces per level.
  std::string to_string(int indent = -1) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;

  void write(std::string& out, int indent, int depth) const;
};

/// Appends a JSON string literal (quotes + escapes) for `text` to `out`.
void append_json_string(std::string& out, std::string_view text);

/// Appends a JSON number for `v` (integer form when exact, null when
/// non-finite) to `out`.
void append_json_number(std::string& out, double v);

}  // namespace kf
