#include "telemetry/request_context.hpp"

#include <string_view>

namespace kf {

namespace {

// The active trace for this thread. Trivially copyable + trivially
// destructible, so access is a plain TLS load — no guard variable, no
// allocation.
thread_local TraceId g_current_trace;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void TraceId::format(char out[33]) const noexcept {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 0; i < 16; ++i)
    out[i] = kHex[(hi >> (60 - 4 * i)) & 0xF];
  for (int i = 0; i < 16; ++i)
    out[16 + i] = kHex[(lo >> (60 - 4 * i)) & 0xF];
  out[32] = '\0';
}

std::string TraceId::to_hex() const {
  char buf[33];
  format(buf);
  return std::string(buf, 32);
}

TraceId TraceId::from_hex(std::string_view hex) noexcept {
  if (hex.size() != 32) return TraceId{};
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(w * 16 + i)];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') nibble = static_cast<std::uint64_t>(c - 'A' + 10);
      else return TraceId{};
      words[w] = (words[w] << 4) | nibble;
    }
  }
  return TraceId{words[0], words[1]};
}

TraceId TraceId::derive(std::uint64_t seq, std::uint64_t program_fp,
                        std::uint64_t device_fp, std::uint64_t salt) noexcept {
  // Two independent splitmix chains over the same inputs with distinct
  // domain constants: collisions between requests require a 128-bit
  // coincidence, and the same (seq, fingerprints, salt) always reproduces
  // the same id so replayed batches line up with archived traces.
  TraceId id;
  id.hi = splitmix64(splitmix64(seq ^ 0x7265717565737431ULL) ^
                     splitmix64(program_fp) ^ salt);
  id.lo = splitmix64(splitmix64(device_fp ^ 0x74726163655f6964ULL) ^
                     splitmix64(seq + 0x632a9d6e) ^ splitmix64(salt));
  if (!id.valid()) id.lo = 1;  // never emit the "no trace" sentinel
  return id;
}

TraceId current_trace() noexcept { return g_current_trace; }

TraceScope::TraceScope(TraceId id) noexcept : prev_(g_current_trace) {
  g_current_trace = id;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

const char* RequestContext::stage_name(int stage) noexcept {
  switch (stage) {
    case kAdmission: return "admission";
    case kQueueWait: return "queue_wait";
    case kStoreGet: return "store_get";
    case kPolish: return "polish";
    case kSearch: return "search";
    case kBackoff: return "backoff";
    case kCoalesceWait: return "coalesce_wait";
    case kWriteBack: return "write_back";
  }
  return "?";
}

}  // namespace kf
