#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <type_traits>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/fs_io.hpp"

namespace kf {

namespace {

static_assert(std::is_trivially_copyable_v<FlightRecord>);
static_assert(std::is_trivially_copyable_v<BundleHeader>);
static_assert(std::is_trivially_copyable_v<InflightDump>);
static_assert(std::is_trivially_copyable_v<StateSnapshot>);
static_assert(sizeof(FlightServePayload) <= kFlightPayloadBytes);
static_assert(sizeof(FlightDecisionPayload) <= kFlightPayloadBytes);
static_assert(sizeof(FlightSpanPayload) <= kFlightPayloadBytes);
static_assert(sizeof(StateSnapshot) <= kFlightPayloadBytes);
static_assert(sizeof(FlightTriggerPayload) <= kFlightPayloadBytes);
// The payload area starts 8-byte aligned so the typed views are legal.
static_assert(offsetof(FlightRecord, payload) % 8 == 0);

std::string_view bytes_of(const void* p, std::size_t n) noexcept {
  return std::string_view(static_cast<const char*>(p), n);
}

/// Signals the recorder intercepts when armed.
constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
constexpr int kNumFatalSignals =
    static_cast<int>(sizeof(kFatalSignals) / sizeof(kFatalSignals[0]));

std::atomic<FlightRecorder*> g_signal_recorder{nullptr};
struct sigaction g_old_actions[kNumFatalSignals];

extern "C" void kf_flight_signal_handler(int sig) {
  FlightRecorder* recorder =
      g_signal_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) recorder->signal_dump(sig);
  // SA_RESETHAND already restored SIG_DFL for `sig`; re-deliver so the
  // process dies with the original disposition (core/terminate).
  ::raise(sig);
}

/// Distributes recording threads across stripes without hashing
/// std::thread::id (and without any per-record synchronization).
unsigned thread_stripe_token() noexcept {
  static std::atomic<unsigned> next{0};
  static thread_local const unsigned token =
      next.fetch_add(1, std::memory_order_relaxed);
  return token;
}

bool write_all(int fd, const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

const char* FlightRecorder::kSignalBundleFile = "incident-signal.kfr";

const char* to_string(IncidentReason reason) noexcept {
  switch (reason) {
    case IncidentReason::kNone: return "none";
    case IncidentReason::kSignal: return "signal";
    case IncidentReason::kStoreSalvage: return "store_salvage";
    case IncidentReason::kSloBurn: return "slo_burn";
    case IncidentReason::kDeadlineSpike: return "deadline_spike";
    case IncidentReason::kStalledWorker: return "stalled_worker";
    case IncidentReason::kExitDump: return "exit_dump";
  }
  return "unknown";
}

StateSnapshot StatePage::snapshot() const noexcept {
  StateSnapshot s;
  s.requests_total = requests_total.load(std::memory_order_relaxed);
  s.deadline_missed_total =
      deadline_missed_total.load(std::memory_order_relaxed);
  s.degraded_total = degraded_total.load(std::memory_order_relaxed);
  s.rejected_overload_total =
      rejected_overload_total.load(std::memory_order_relaxed);
  s.coalesce_timeout_total =
      coalesce_timeout_total.load(std::memory_order_relaxed);
  s.retries_total = retries_total.load(std::memory_order_relaxed);
  s.trivial_floor_total = trivial_floor_total.load(std::memory_order_relaxed);
  s.incidents_total = incidents_total.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth.load(std::memory_order_relaxed);
  s.queue_capacity = queue_capacity.load(std::memory_order_relaxed);
  s.workers = workers.load(std::memory_order_relaxed);
  s.inflight = inflight.load(std::memory_order_relaxed);
  s.store_salvaged = store_salvaged.load(std::memory_order_relaxed);
  s.store_quarantined = store_quarantined.load(std::memory_order_relaxed);
  s.calibration_drift = calibration_drift.load(std::memory_order_relaxed);
  s.worst_burn = worst_burn.load(std::memory_order_relaxed);
  return s;
}

const FlightServePayload* FlightRecord::as_serve() const noexcept {
  if (record_type() != FlightRecordType::kServe ||
      payload_bytes < sizeof(FlightServePayload))
    return nullptr;
  return reinterpret_cast<const FlightServePayload*>(payload);
}

const FlightDecisionPayload* FlightRecord::as_decision() const noexcept {
  if (record_type() != FlightRecordType::kDecision ||
      payload_bytes < sizeof(FlightDecisionPayload))
    return nullptr;
  return reinterpret_cast<const FlightDecisionPayload*>(payload);
}

const FlightSpanPayload* FlightRecord::as_span() const noexcept {
  if (record_type() != FlightRecordType::kSpan ||
      payload_bytes < sizeof(FlightSpanPayload))
    return nullptr;
  return reinterpret_cast<const FlightSpanPayload*>(payload);
}

const StateSnapshot* FlightRecord::as_counters() const noexcept {
  if (record_type() != FlightRecordType::kCounters ||
      payload_bytes < sizeof(StateSnapshot))
    return nullptr;
  return reinterpret_cast<const StateSnapshot*>(payload);
}

const FlightTriggerPayload* FlightRecord::as_trigger() const noexcept {
  if (record_type() != FlightRecordType::kTrigger ||
      payload_bytes < sizeof(FlightTriggerPayload))
    return nullptr;
  return reinterpret_cast<const FlightTriggerPayload*>(payload);
}

FlightRecorder::FlightRecorder(Config config)
    : clock_(std::move(config.clock)),
      metrics_(config.metrics),
      stripes_(std::max(1, config.stripes)),
      slots_per_stripe_(std::max<std::size_t>(
          1, std::max(config.capacity, static_cast<std::size_t>(stripes_)) /
                 static_cast<std::size_t>(stripes_))),
      slots_(static_cast<std::size_t>(stripes_) * slots_per_stripe_),
      stripe_state_(static_cast<std::size_t>(stripes_)) {
  if (!clock_) clock_ = [this] { return epoch_.elapsed_s(); };
}

FlightRecorder::~FlightRecorder() { disarm_signal_dump(); }

FlightRecord* FlightRecorder::claim(FlightRecordType type, TraceId trace,
                                    std::uint16_t payload_bytes) noexcept {
  const unsigned stripe = thread_stripe_token() % stripes_;
  Stripe& st = stripe_state_[stripe];
  const std::uint64_t w = st.writes.fetch_add(1, std::memory_order_relaxed);
  FlightRecord* rec =
      &slots_[stripe * slots_per_stripe_ + (w % slots_per_stripe_)];
  const double t = clock_();
  last_t_s_.store(t, std::memory_order_relaxed);
  rec->magic = 0;  // a concurrent dump sees "being rewritten", CRC fails
  rec->type = static_cast<std::uint16_t>(type);
  rec->payload_bytes = payload_bytes;
  rec->seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->t_s = t;
  rec->trace = trace;
  std::memset(rec->payload, 0, sizeof(rec->payload));
  rec->pad = 0;
  return rec;
}

void FlightRecorder::seal(FlightRecord* record) noexcept {
  record->magic = FlightRecord::kMagic;
  record->crc = crc32(bytes_of(record, offsetof(FlightRecord, crc)));
}

void FlightRecorder::record_serve(const FlightServePayload& payload,
                                  TraceId trace) {
  FlightRecord* rec = claim(FlightRecordType::kServe, trace,
                            static_cast<std::uint16_t>(sizeof(payload)));
  std::memcpy(rec->payload, &payload, sizeof(payload));
  seal(rec);
}

void FlightRecorder::record_decision(int site, bool accepted,
                                     const int* members, int member_count,
                                     double cost_delta_s, const char* dominant,
                                     TraceId trace) {
  FlightDecisionPayload payload;
  payload.site = site;
  payload.accepted = accepted ? 1 : 0;
  const int n = std::clamp(member_count, 0, 16);
  payload.member_count = member_count;
  for (int i = 0; i < n; ++i) payload.members[i] = members[i];
  payload.cost_delta_s = cost_delta_s;
  if (dominant != nullptr) {
    std::strncpy(payload.dominant, dominant, sizeof(payload.dominant) - 1);
  }
  FlightRecord* rec = claim(FlightRecordType::kDecision, trace,
                            static_cast<std::uint16_t>(sizeof(payload)));
  std::memcpy(rec->payload, &payload, sizeof(payload));
  seal(rec);
}

void FlightRecorder::record_span(const char* name, double start_s,
                                 double dur_s, int tid, TraceId trace) {
  FlightSpanPayload payload;
  if (name != nullptr)
    std::strncpy(payload.name, name, sizeof(payload.name) - 1);
  payload.start_s = start_s;
  payload.dur_s = dur_s;
  payload.tid = tid;
  FlightRecord* rec = claim(FlightRecordType::kSpan, trace,
                            static_cast<std::uint16_t>(sizeof(payload)));
  std::memcpy(rec->payload, &payload, sizeof(payload));
  seal(rec);
}

void FlightRecorder::record_counters() {
  const StateSnapshot snap = state_.snapshot();
  FlightRecord* rec = claim(FlightRecordType::kCounters, TraceId{},
                            static_cast<std::uint16_t>(sizeof(snap)));
  std::memcpy(rec->payload, &snap, sizeof(snap));
  seal(rec);
}

void FlightRecorder::record_trigger(const FlightTriggerPayload& payload,
                                    TraceId trace) {
  FlightRecord* rec = claim(FlightRecordType::kTrigger, trace,
                            static_cast<std::uint16_t>(sizeof(payload)));
  std::memcpy(rec->payload, &payload, sizeof(payload));
  seal(rec);
}

long FlightRecorder::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& st : stripe_state_)
    total += st.writes.load(std::memory_order_relaxed);
  return static_cast<long>(total);
}

long FlightRecorder::dropped() const noexcept {
  std::uint64_t dropped = 0;
  for (const Stripe& st : stripe_state_) {
    const std::uint64_t w = st.writes.load(std::memory_order_relaxed);
    if (w > slots_per_stripe_) dropped += w - slots_per_stripe_;
  }
  return static_cast<long>(dropped);
}

int FlightRecorder::inflight_begin(int worker_id, TraceId trace, long seq,
                                   double deadline_s, double now_s) noexcept {
  const int slot =
      worker_id >= 0
          ? worker_id % kInflightSlots
          : static_cast<int>(thread_stripe_token() % kInflightSlots);
  InflightSlot& s = inflight_[slot];
  s.busy.store(0, std::memory_order_relaxed);
  s.worker_id.store(worker_id, std::memory_order_relaxed);
  s.trace_hi.store(trace.hi, std::memory_order_relaxed);
  s.trace_lo.store(trace.lo, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_relaxed);
  s.since_s.store(now_s, std::memory_order_relaxed);
  s.deadline_s.store(deadline_s, std::memory_order_relaxed);
  for (auto& stage : s.stage_s) stage.store(0.0, std::memory_order_relaxed);
  s.busy.store(1, std::memory_order_release);
  return slot;
}

void FlightRecorder::inflight_update(int slot,
                                     const RequestContext& rc) noexcept {
  if (slot < 0 || slot >= kInflightSlots) return;
  InflightSlot& s = inflight_[slot];
  for (int i = 0; i < RequestContext::kNumStages; ++i)
    s.stage_s[i].store(rc.stage_s[i], std::memory_order_relaxed);
}

void FlightRecorder::inflight_end(int slot) noexcept {
  if (slot < 0 || slot >= kInflightSlots) return;
  inflight_[slot].busy.store(0, std::memory_order_release);
}

BundleHeader FlightRecorder::make_header(IncidentReason reason,
                                         int signal) const noexcept {
  BundleHeader h;
  // Zero every byte, padding included, so the CRC is a pure function of the
  // field values (value-init leaves implicit padding unspecified).
  std::memset(static_cast<void*>(&h), 0, sizeof(h));
  h.magic = BundleHeader::kMagic;
  h.version = BundleHeader::kVersion;
  h.reason = static_cast<std::uint16_t>(reason);
  h.signal = signal;
  h.stripes = static_cast<std::uint32_t>(stripes_);
  h.slots_per_stripe = static_cast<std::uint32_t>(slots_per_stripe_);
  h.record_bytes = static_cast<std::uint32_t>(sizeof(FlightRecord));
  h.inflight_slots = kInflightSlots;
  h.inflight_bytes = static_cast<std::uint32_t>(sizeof(InflightDump));
  h.recorded_total = recorded();
  h.dropped_total = dropped();
  h.captured_s = last_t_s_.load(std::memory_order_relaxed);
  h.state = state_.snapshot();
  h.crc = crc32(bytes_of(&h, offsetof(BundleHeader, crc)));
  return h;
}

void FlightRecorder::fill_inflight_dump(int slot,
                                        InflightDump* out) const noexcept {
  const InflightSlot& s = inflight_[slot];
  std::memset(static_cast<void*>(out), 0, sizeof(*out));
  out->magic = InflightDump::kMagic;
  out->busy = s.busy.load(std::memory_order_acquire);
  out->slot = slot;
  out->worker_id = s.worker_id.load(std::memory_order_relaxed);
  out->trace.hi = s.trace_hi.load(std::memory_order_relaxed);
  out->trace.lo = s.trace_lo.load(std::memory_order_relaxed);
  out->seq = s.seq.load(std::memory_order_relaxed);
  out->since_s = s.since_s.load(std::memory_order_relaxed);
  out->deadline_s = s.deadline_s.load(std::memory_order_relaxed);
  for (int i = 0; i < RequestContext::kNumStages; ++i)
    out->stage_s[i] = s.stage_s[i].load(std::memory_order_relaxed);
  out->crc = crc32(bytes_of(out, offsetof(InflightDump, crc)));
}

std::string FlightRecorder::serialize(IncidentReason reason,
                                      int signal) const {
  std::string out;
  out.reserve(kBundleLine.size() + sizeof(BundleHeader) +
              kInflightSlots * sizeof(InflightDump) +
              slots_.size() * sizeof(FlightRecord));
  out.append(kBundleLine);
  const BundleHeader h = make_header(reason, signal);
  out.append(reinterpret_cast<const char*>(&h), sizeof(h));
  for (int i = 0; i < kInflightSlots; ++i) {
    InflightDump d;
    fill_inflight_dump(i, &d);
    out.append(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  out.append(reinterpret_cast<const char*>(slots_.data()),
             slots_.size() * sizeof(FlightRecord));
  return out;
}

std::string FlightRecorder::dump_incident(const std::string& dir,
                                          IncidentReason reason) {
  const long ordinal =
      state_.incidents_total.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string body = serialize(reason, 0);
  char name[80];
  std::snprintf(name, sizeof(name), "incident-%06ld-%s.kfr", ordinal,
                to_string(reason));
  const std::string path = dir + "/" + name;
  write_file_atomic(path, body, /*durable=*/true);
  if (metrics_ != nullptr) metrics_->count("serve.incidents_total");
  return path;
}

std::string FlightRecorder::arm_signal_dump(const std::string& dir) {
  disarm_signal_dump();
  signal_path_ = dir + "/" + kSignalBundleFile;
  signal_fd_ = ::open(signal_path_.c_str(),
                      O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (signal_fd_ < 0)
    throw StoreError("flight recorder: cannot open signal bundle " +
                     signal_path_);
  signal_scratch_.assign(kInflightSlots, InflightDump{});
  dumping_.store(false, std::memory_order_relaxed);
  g_signal_recorder.store(this, std::memory_order_release);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = kf_flight_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: SIG_DFL is restored before the handler runs, so the
  // handler's closing raise() delivers the default (fatal) disposition.
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  for (int i = 0; i < kNumFatalSignals; ++i)
    ::sigaction(kFatalSignals[i], &sa, &g_old_actions[i]);
  return signal_path_;
}

void FlightRecorder::disarm_signal_dump() noexcept {
  FlightRecorder* expected = this;
  if (g_signal_recorder.compare_exchange_strong(expected, nullptr,
                                                std::memory_order_acq_rel)) {
    for (int i = 0; i < kNumFatalSignals; ++i)
      ::sigaction(kFatalSignals[i], &g_old_actions[i], nullptr);
  }
  if (signal_fd_ >= 0) {
    ::close(signal_fd_);
    signal_fd_ = -1;
    // The fd is pre-opened (O_CREAT) at arm time; when no signal ever
    // fired the file is still empty — remove it rather than leave a
    // zero-byte "incident" for bundle-counting tooling to trip over.
    if (!dumping_.load(std::memory_order_acquire) && !signal_path_.empty())
      ::unlink(signal_path_.c_str());
  }
}

bool FlightRecorder::signal_armed() const noexcept {
  return signal_fd_ >= 0 &&
         g_signal_recorder.load(std::memory_order_acquire) == this;
}

void FlightRecorder::signal_dump(int signal) noexcept {
  // Everything below is async-signal-safe: relaxed/acquire atomic loads,
  // CRC table lookups, write(2), fsync(2). No allocation, locks or stdio.
  const int fd = signal_fd_;
  if (fd < 0) return;
  if (dumping_.exchange(true, std::memory_order_acq_rel)) return;
  state_.incidents_total.fetch_add(1, std::memory_order_relaxed);
  ::lseek(fd, 0, SEEK_SET);
  bool ok = write_all(fd, kBundleLine.data(), kBundleLine.size());
  const BundleHeader h = make_header(IncidentReason::kSignal, signal);
  ok = ok && write_all(fd, &h, sizeof(h));
  for (int i = 0; ok && i < kInflightSlots; ++i) {
    InflightDump* d = &signal_scratch_[static_cast<std::size_t>(i)];
    fill_inflight_dump(i, d);
    ok = write_all(fd, d, sizeof(*d));
  }
  ok = ok &&
       write_all(fd, slots_.data(), slots_.size() * sizeof(FlightRecord));
  if (ok) ::fsync(fd);
}

FlightBundle FlightRecorder::parse(std::string_view bytes) {
  FlightBundle b;
  if (bytes.size() < kBundleLine.size()) {
    // A short prefix of a real bundle reads as truncation; anything else
    // is simply not a bundle.
    b.truncated = kBundleLine.substr(0, bytes.size()) == bytes;
    return b;
  }
  if (bytes.compare(0, kBundleLine.size(), kBundleLine) != 0) return b;
  std::size_t off = kBundleLine.size();
  if (bytes.size() - off < sizeof(BundleHeader)) {
    b.truncated = true;
    return b;
  }
  std::memcpy(&b.header, bytes.data() + off, sizeof(BundleHeader));
  off += sizeof(BundleHeader);
  const BundleHeader& h = b.header;
  if (h.magic != BundleHeader::kMagic || h.version != BundleHeader::kVersion)
    return b;
  if (h.crc != crc32(bytes_of(&h, offsetof(BundleHeader, crc)))) return b;
  // Geometry must match this build's record layout or the walk below
  // would misframe every slot.
  if (h.record_bytes != sizeof(FlightRecord) ||
      h.inflight_bytes != sizeof(InflightDump))
    return b;
  b.header_ok = true;
  for (std::uint32_t i = 0; i < h.inflight_slots; ++i) {
    if (bytes.size() - off < sizeof(InflightDump)) {
      b.truncated = true;
      return b;
    }
    InflightDump d;
    std::memcpy(&d, bytes.data() + off, sizeof(InflightDump));
    off += sizeof(InflightDump);
    if (d.magic != InflightDump::kMagic ||
        d.crc != crc32(bytes_of(&d, offsetof(InflightDump, crc)))) {
      ++b.inflight_quarantined;
    } else if (d.busy != 0) {
      b.inflight.push_back(d);
    }
  }
  const std::uint64_t total_slots =
      static_cast<std::uint64_t>(h.stripes) * h.slots_per_stripe;
  for (std::uint64_t i = 0; i < total_slots; ++i) {
    if (bytes.size() - off < sizeof(FlightRecord)) {
      b.truncated = true;
      break;
    }
    FlightRecord rec;
    std::memcpy(&rec, bytes.data() + off, sizeof(FlightRecord));
    off += sizeof(FlightRecord);
    if (rec.magic == 0) {
      ++b.empty_slots;
    } else if (rec.magic != FlightRecord::kMagic ||
               rec.crc != crc32(bytes_of(&rec, offsetof(FlightRecord, crc)))) {
      ++b.quarantined;
    } else {
      b.records.push_back(rec);
    }
  }
  std::sort(b.records.begin(), b.records.end(),
            [](const FlightRecord& a, const FlightRecord& r) {
              return a.seq < r.seq;
            });
  return b;
}

FlightBundle FlightRecorder::read(const std::string& path) {
  return parse(read_file(path));
}

}  // namespace kf
