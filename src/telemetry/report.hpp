// RunReport — post-hoc aggregation of a telemetry-enabled run.
//
// `kfc report` (and tests) rebuild a run summary from the two artifacts a
// search leaves behind: the metrics JSON (--metrics) and the JSONL event
// trace (--events). Either input alone renders a partial report — the
// metrics file carries the run-summary block and final series, the event
// log carries the convergence curve, fault quarantines and per-group cost
// breakdowns. The renderer produces the human tables (convergence curve,
// stop reason, fault clusters, top-k groups by predicted-time component);
// to_json() re-exports the aggregate for machine consumers.
#pragma once

#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace kf {

struct RunReport {
  // ---- run summary (metrics "run" block, else the search_end event) ----
  std::string program;
  std::string method;
  std::string objective;
  std::string device;
  std::string stop_reason;
  double best_cost_s = 0.0;
  double baseline_cost_s = 0.0;
  double runtime_s = 0.0;
  long generations = 0;
  long evaluations = 0;
  long faults = 0;
  bool has_summary = false;

  // ---- evaluation-cache counters (metrics "run" block; -1 = absent) ----
  double cache_hit_rate = -1.0;
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_incremental_hits = 0;
  long cache_duplicate_misses = 0;
  long cache_shard_contention = 0;

  // ---- per-generation convergence (from "generation" events) ----
  struct GenerationSample {
    long generation = 0;
    double best_cost_s = 0.0;
    double mean_cost_s = 0.0;
    double worst_cost_s = 0.0;
    long distinct_plans = 0;
    double mean_groups = 0.0;
    long evaluations = 0;
    double elapsed_s = 0.0;
  };
  std::vector<GenerationSample> convergence;

  // ---- quarantined faults (from "fault_quarantine" events) ----
  struct Quarantine {
    std::string fingerprint;
    std::vector<long> members;
    std::string error;
  };
  std::vector<Quarantine> quarantines;

  // ---- per-group cost breakdowns (from "group_breakdown" events) ----
  struct GroupRow {
    std::string name;
    std::vector<long> members;
    double total_s = 0.0;
    /// (component name, seconds) in emission order, e.g. "gmem_traffic_s".
    std::vector<std::pair<std::string, double>> components;
  };
  std::vector<GroupRow> groups;

  // ---- fusion decision provenance (from "decision" events) ----
  struct DecisionCount {
    std::string site;  ///< e.g. "greedy_merge" (DecisionLog::to_string)
    long accepted = 0;
    long rejected = 0;
  };
  std::vector<DecisionCount> decisions;  ///< in first-seen site order
  long decisions_total = 0;
  double accepted_cost_delta_s = 0.0;  ///< summed delta of accepted decisions

  // ---- projection calibration (metrics "calibration" block plus
  //      "calibration_drift" warning events) ----
  struct CalibrationBucket {
    std::string group_size;  ///< bucket label, e.g. "5-8"
    long count = 0;
    double mean_rel_error = 0.0;
    double p90_abs_rel_error = 0.0;
    double sign_bias = 0.0;
    bool drift = false;
  };
  std::vector<CalibrationBucket> calibration;
  bool has_calibration = false;
  double calibration_drift_band = 0.0;
  long calibration_samples = 0;
  std::vector<std::string> drift_warnings;  ///< one line per drift event

  long checkpoint_saves = 0;
  bool resumed = false;

  /// Loads whichever paths are non-empty; throws kf::RuntimeError on
  /// unreadable files or malformed JSON (a malformed JSONL *line* names
  /// its line number).
  static RunReport from_files(const std::string& metrics_path,
                              const std::string& events_path);

  /// Folds one parsed trace event into the report.
  void ingest_event(const JsonValue& event);

  /// Folds a parsed metrics document in (kfc-metrics/v2; v1 documents
  /// simply lack the calibration block).
  void ingest_metrics(const JsonValue& metrics);

  double projected_speedup() const noexcept {
    return best_cost_s > 0.0 ? baseline_cost_s / best_cost_s : 0.0;
  }

  /// Human-readable summary: run header, convergence table (downsampled),
  /// fault clusters, top_k groups by predicted-time component.
  std::string render(int top_k = 5) const;

  JsonValue to_json() const;
};

}  // namespace kf
