// RunReport — post-hoc aggregation of a telemetry-enabled run.
//
// `kfc report` (and tests) rebuild a run summary from the two artifacts a
// search leaves behind: the metrics JSON (--metrics) and the JSONL event
// trace (--events). Either input alone renders a partial report — the
// metrics file carries the run-summary block and final series, the event
// log carries the convergence curve, fault quarantines and per-group cost
// breakdowns. Serving runs (`kfc serve-batch`) are first-class too: the
// serve.*/store.* metric families, the per-request "serve_request" wide
// events and the kfc-metrics/v3 "slo" block fold into a per-rung latency
// percentile table. The renderer produces the human tables (convergence
// curve, stop reason, fault clusters, top-k groups, serving rungs);
// to_json() re-exports the aggregate for machine consumers.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/slo.hpp"

namespace kf {

struct RunReport {
  // ---- run summary (metrics "run" block, else the search_end event) ----
  std::string program;
  std::string method;
  std::string objective;
  std::string device;
  std::string stop_reason;
  double best_cost_s = 0.0;
  double baseline_cost_s = 0.0;
  double runtime_s = 0.0;
  long generations = 0;
  long evaluations = 0;
  long faults = 0;
  bool has_summary = false;

  // ---- evaluation-cache counters (metrics "run" block; -1 = absent) ----
  double cache_hit_rate = -1.0;
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_incremental_hits = 0;
  long cache_duplicate_misses = 0;
  long cache_shard_contention = 0;
  long delta_hits = 0;
  long delta_full_recosts = 0;
  long delta_mismatches = 0;

  // ---- per-generation convergence (from "generation" events) ----
  struct GenerationSample {
    long generation = 0;
    double best_cost_s = 0.0;
    double mean_cost_s = 0.0;
    double worst_cost_s = 0.0;
    long distinct_plans = 0;
    double mean_groups = 0.0;
    long evaluations = 0;
    double elapsed_s = 0.0;
  };
  std::vector<GenerationSample> convergence;

  // ---- quarantined faults (from "fault_quarantine" events) ----
  struct Quarantine {
    std::string fingerprint;
    std::vector<long> members;
    std::string error;
  };
  std::vector<Quarantine> quarantines;

  // ---- per-group cost breakdowns (from "group_breakdown" events) ----
  struct GroupRow {
    std::string name;
    std::vector<long> members;
    double total_s = 0.0;
    /// (component name, seconds) in emission order, e.g. "gmem_traffic_s".
    std::vector<std::pair<std::string, double>> components;
  };
  std::vector<GroupRow> groups;

  // ---- fusion decision provenance (from "decision" events) ----
  struct DecisionCount {
    std::string site;  ///< e.g. "greedy_merge" (DecisionLog::to_string)
    long accepted = 0;
    long rejected = 0;
  };
  std::vector<DecisionCount> decisions;  ///< in first-seen site order
  long decisions_total = 0;
  double accepted_cost_delta_s = 0.0;  ///< summed delta of accepted decisions

  // ---- projection calibration (metrics "calibration" block plus
  //      "calibration_drift" warning events) ----
  struct CalibrationBucket {
    std::string group_size;  ///< bucket label, e.g. "5-8"
    long count = 0;
    double mean_rel_error = 0.0;
    double p90_abs_rel_error = 0.0;
    double sign_bias = 0.0;
    bool drift = false;
  };
  std::vector<CalibrationBucket> calibration;
  bool has_calibration = false;
  double calibration_drift_band = 0.0;
  long calibration_samples = 0;
  std::vector<std::string> drift_warnings;  ///< one line per drift event

  long checkpoint_saves = 0;
  bool resumed = false;

  // ---- serving (serve.*/store.* counters plus "serve_request" wide
  //      events; `kfc serve-batch --metrics/--events` artifacts) ----
  struct ServeRungStats {
    std::string rung;                 ///< ladder rung name, first-seen order
    std::vector<double> latencies_s;  ///< one per wide event (unsorted)
    long counter_requests = 0;  ///< serve.rung_total.<rung>; 0 = no metrics
    long deadline_misses = 0;   ///< from wide events
    long traced = 0;            ///< wide events carrying a trace id
    double worst_headroom = 1.0;  ///< min of 1 - deadline_frac_used
    bool has_headroom = false;    ///< any event ran under a real deadline
  };
  std::vector<ServeRungStats> serve_rungs;  ///< in first-seen rung order
  bool has_serve = false;
  // Counter-derived totals (0 when the metrics file was not given).
  long serve_requests = 0;
  long serve_deadline_misses = 0;
  long serve_degraded = 0;
  long serve_queued = 0;
  long serve_rejected = 0;
  long serve_retries = 0;
  // Event-derived totals (0 when the events file was not given).
  long serve_wide_events = 0;
  long serve_traced = 0;        ///< wide events with a "trace" id stamped
  long serve_event_misses = 0;
  long serve_event_degraded = 0;
  /// Raw serve.*/store.* counters not folded into a field above, for the
  /// operational table (e.g. store.write_faults, serve.retries_total).
  std::vector<std::pair<std::string, long>> serving_counters;
  // serve.latency_seconds histogram summary (metrics file).
  bool has_serve_latency = false;
  long serve_latency_count = 0;
  double serve_latency_mean = 0.0;
  double serve_latency_p50 = 0.0;
  double serve_latency_p90 = 0.0;
  double serve_latency_p99 = 0.0;
  double serve_latency_max = 0.0;

  // ---- SLO (metrics "slo" block, kfc-metrics/v3) ----
  bool has_slo = false;
  SloTracker::Report slo;

  /// Loads whichever paths are non-empty; throws kf::RuntimeError on
  /// unreadable files or malformed JSON (a malformed JSONL *line* names
  /// its line number).
  static RunReport from_files(const std::string& metrics_path,
                              const std::string& events_path);

  /// Folds one parsed trace event into the report.
  void ingest_event(const JsonValue& event);

  /// Folds a parsed metrics document in (kfc-metrics/v3; older documents
  /// simply lack the calibration / serving / slo blocks).
  void ingest_metrics(const JsonValue& metrics);

  double projected_speedup() const noexcept {
    return best_cost_s > 0.0 ? baseline_cost_s / best_cost_s : 0.0;
  }

  /// Human-readable summary: run header, convergence table (downsampled),
  /// fault clusters, top_k groups by predicted-time component, and (for
  /// serving runs) the per-rung latency percentile table plus SLO burn.
  std::string render(int top_k = 5) const;

  JsonValue to_json() const;
};

}  // namespace kf
