// Ablation — the expandable-array relaxation (§II-B.1c): what do the
// redundant arrays buy, and at what memory cost?
//
// The relaxation removes WAR/WAW precedences (Fig. 1's QFLX example), so
// the primary effect is on the *order-of-execution graph* and on how many
// kernel pairs become fusible; whether that converts into end-to-end
// speedup depends on whether those precedences were binding for the best
// plans. Reported per workload: precedence-edge count and pairwise
// fusibility with/without expansion, the reducible-traffic bound, the
// realised speedup, and the extra device memory (the cost the paper
// flags).
#include "bench_common.hpp"

namespace {

/// Number of 2-kernel groups that are legal and schedulable.
long fusible_pairs(const kf::LegalityChecker& checker) {
  using namespace kf;
  const int n = checker.program().num_kernels();
  long count = 0;
  for (KernelId a = 0; a < n; ++a) {
    for (KernelId b = a + 1; b < n; ++b) {
      const std::vector<KernelId> pair{a, b};
      if (checker.check_group(pair) != LegalityVerdict::Ok) continue;
      FusionPlan plan(n);
      plan.merge_groups(plan.group_of(a), plan.group_of(b));
      if (checker.plan_is_schedulable(plan)) ++count;
    }
  }
  return count;
}

}  // namespace

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Ablation: expandable-array relaxation on/off",
                      "§II-B.1c and the Fig. 1 QFLX example");

  TextTable table({"workload", "expansion", "precedence edges", "fusible pairs",
                   "reducible bound", "measured speedup", "extra memory"});

  struct Load {
    std::string name;
    Program program;
  };
  std::vector<Load> loads;
  loads.push_back({"rk18", scale_les_rk18()});
  loads.push_back({"cloverleaf", cloverleaf()});
  loads.push_back({"scale-les(142)", scale_les()});

  for (const Load& load : loads) {
    for (const bool expand : {false, true}) {
      const ExpansionResult expansion =
          expand ? expand_arrays(load.program)
                 : ExpansionResult{.program = load.program,
                                   .arrays_added = 0,
                                   .extra_bytes = 0.0,
                                   .versions = {}};
      const ReducibleTrafficReport bound = reducible_traffic(load.program, expand);

      const DeviceSpec device = DeviceSpec::k20x();
      const TimingSimulator sim(device);
      const LegalityChecker checker(expansion.program, device);
      const ProposedModel model(device);
      const Objective objective(checker, model, sim);
      HggaConfig cfg;
      cfg.population = 60;
      cfg.max_generations = small ? 100 : 300;
      cfg.stall_generations = small ? 35 : 90;
      cfg.seed = 0xe4a;
      const SearchResult result = Hgga(objective, cfg).run();

      const FusedProgram fused = apply_fusion(checker, result.best);
      double measured = 0;
      for (const LaunchDescriptor& d : fused.launches) {
        measured += sim.run(expansion.program, d).time_s;
      }
      const double baseline = sim.program_time(expansion.program);
      table.add(load.name, expand ? "on" : "off",
                static_cast<long>(checker.execution_order().dag().num_edges()),
                fusible_pairs(checker),
                fixed(100 * bound.reducible_fraction, 1) + "%",
                fixed(baseline / measured, 2) + "x",
                human_bytes(expansion.extra_bytes));
    }
  }
  std::cout << table;
  std::cout << "\nShape check: expansion strictly removes precedence edges and\n"
               "typically grows the fusible-pair set (readers of different\n"
               "write generations correctly stop counting as data-sharing) and\n"
               "weakly grows the reducible bound.\n"
               "For these workloads the WAR/WAW precedences are rarely the\n"
               "binding constraint on the *best* plan — convex groups may\n"
               "contain internal precedences anyway — so the realised speedup\n"
               "moves little while the memory bill (one redundant array per\n"
               "extra write generation) is substantial. The paper pays it to\n"
               "keep the search space permutation-friendly.\n";
  return 0;
}
