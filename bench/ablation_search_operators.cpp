// Ablation — the value of the grouping GA over simpler search strategies
// (the paper's §III-A argument that first-fit style approximations lack a
// notion of "size" and greedy loop-fusion methods do not scale).
//
// Compares, on suite benchmarks of growing size: HGGA, greedy best-merge,
// random sampling with the same legality machinery, and (when feasible)
// the exhaustive optimum.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Ablation: HGGA vs greedy vs random search",
                      "the §III-A solver-choice argument");

  TextTable table({"kernels", "method", "cost", "vs baseline", "evals", "time"});
  const int max_kernels = small ? 24 : 48;
  for (int kernels = 12; kernels <= max_kernels; kernels += 12) {
    TestSuiteConfig cfg;
    cfg.kernels = kernels;
    cfg.arrays = 2 * kernels;
    cfg.thread_load = 8;
    cfg.seed = 3100 + static_cast<std::uint64_t>(kernels);
    cfg.grid = GridDims{512, 256, 32};
    const Program program = make_testsuite_program(cfg);

    auto row = [&](const char* method, const SearchResult& r) {
      table.add(kernels, method, human_time(r.best_cost_s),
                fixed(r.baseline_cost_s / r.best_cost_s, 3) + "x", r.evaluations,
                human_time(r.runtime_s));
    };

    {
      bench::BenchPipeline pipe(program, DeviceSpec::k20x());
      row("hgga", pipe.search(60, small ? 120 : 300, small ? 40 : 90, cfg.seed));
    }
    {
      bench::BenchPipeline pipe(program, DeviceSpec::k20x());
      row("greedy", greedy_search(pipe.objective));
    }
    {
      bench::BenchPipeline pipe(program, DeviceSpec::k20x());
      AnnealingConfig acfg;
      acfg.iterations = small ? 4000 : 20000;
      acfg.seed = cfg.seed;
      row("annealing", annealing_search(pipe.objective, acfg));
    }
    {
      bench::BenchPipeline pipe(program, DeviceSpec::k20x());
      RandomSearchConfig rcfg;
      rcfg.samples = small ? 500 : 3000;
      rcfg.seed = cfg.seed;
      row("random", random_search(pipe.objective, rcfg));
    }
  }
  std::cout << table;
  std::cout << "\nShape check: HGGA matches or beats greedy everywhere and the\n"
               "gap to random sampling widens with problem size — group-level\n"
               "crossover transplants whole profitable fusions, which random\n"
               "restarts cannot rediscover at scale.\n";
  return 0;
}
