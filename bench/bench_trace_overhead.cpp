// Request-tracing overhead smoke: serving throughput with the full
// observability stack attached (trace scope + wide events + spans + metrics
// with exemplars + SLO samples) vs. a bare PlanServer.
//
// The tracing PR's contract is that per-request observability stays out of
// the serving hot path: the trace id is a 16-byte thread-local install, the
// wide event is one JSONL line per request, and metrics/SLO recording is a
// handful of counter bumps — so a fully-instrumented server must stay
// within a few percent of a bare one on the steady-state (store-hit) path.
// This bench warms the store, replays a request stream through both
// configurations interleaved, and fails when the overhead exceeds the
// budget (--max-overhead PCT, default 3%). Both streams must also serve the
// exact same plans — tracing that changed a response would be a far worse
// bug than a slow one.
//
// The JSON mirror (BENCH_trace_overhead.json) feeds the CI perf-smoke job.
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/plan_server.hpp"
#include "store/plan_store.hpp"

namespace kf::bench {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/kf_bench_trace_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct Stream {
  double best_s = 1e300;  ///< best-of-N wall time for the request loop
  std::vector<std::string> plans;
  long wide_events = 0;
  long spans = 0;
};

int run(int argc, char** argv) {
  double max_overhead_pct = 3.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--max-overhead") == 0)
      max_overhead_pct = std::atof(argv[i + 1]);
  }

  print_header("Request-tracing overhead on the serving path",
               "the observability layer's <3% tracing-overhead budget");

  // A 256-kernel test-suite program: a store hit re-validates and re-costs a
  // real plan, so the per-request floor the overhead is measured against is
  // the serving steady state on an application-scale program (the paper's
  // apps run 418-654 kernels), not an empty loop on a toy one.
  TestSuiteConfig suite;
  suite.kernels = 256;
  suite.arrays = 512;
  suite.seed = 7;
  const Program program = make_testsuite_program(suite);
  const std::vector<DeviceSpec> devices = {DeviceSpec::k20x(),
                                           DeviceSpec::k40()};
  const long requests = small_scale() ? 200 : 1000;
  const int reps = small_scale() ? 3 : 5;

  // One SHARED store, warmed once: the first serve's search is
  // deadline-bounded (anytime), so two independent warmups could legally
  // store different plans and the bit-identical check would compare search
  // nondeterminism instead of tracing. Sharing the store means both timed
  // loops replay hits on the exact same stored plans.
  PlanStore store({.dir = fresh_dir("shared"), .durable = false});
  PlanServer bare(store, PlanServerConfig{});

  std::ostringstream events;
  TraceLog trace(events);
  SpanTracer spans(std::size_t{1} << 20);
  MetricsRegistry metrics;
  SloTracker slo;
  Telemetry telemetry;
  telemetry.trace = &trace;
  telemetry.spans = &spans;
  telemetry.metrics = &metrics;
  telemetry.slo = &slo;
  PlanServerConfig traced_cfg;
  traced_cfg.telemetry = &telemetry;
  PlanServer traced(store, traced_cfg);

  // Warm through the bare server (one search per device, written back),
  // then touch the traced server once per device so both start on the
  // steady-state store-hit path.
  for (const DeviceSpec& d : devices) {
    bare.serve(program, d);
    traced.serve(program, d);
  }

  Stream off;
  Stream on;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave the configurations so drift (thermal, noisy neighbours)
    // hits both evenly.
    {
      off.plans.clear();
      Stopwatch watch;
      for (long i = 0; i < requests; ++i) {
        const ServeResult r =
            bare.serve(program, devices[static_cast<std::size_t>(i) %
                                        devices.size()]);
        off.plans.push_back(r.plan.to_string());
      }
      const double secs = watch.elapsed_s();
      if (secs < off.best_s) off.best_s = secs;
    }
    {
      on.plans.clear();
      Stopwatch watch;
      for (long i = 0; i < requests; ++i) {
        const ServeResult r =
            traced.serve(program, devices[static_cast<std::size_t>(i) %
                                          devices.size()]);
        on.plans.push_back(r.plan.to_string());
      }
      const double secs = watch.elapsed_s();
      if (secs < on.best_s) on.best_s = secs;
    }
  }
  on.wide_events = trace.events();
  on.spans = spans.recorded() + spans.dropped();

  const double overhead_pct = 100.0 * (on.best_s / off.best_s - 1.0);
  const bool identical = off.plans == on.plans;
  const double per_request_us =
      1e6 * (on.best_s - off.best_s) / static_cast<double>(requests);

  TextTable table({"telemetry", "best-of-" + std::to_string(reps),
                   "req/s", "overhead"});
  table.add("disabled", human_time(off.best_s),
            fixed(static_cast<double>(requests) / off.best_s, 0), "--");
  table.add("full tracing", human_time(on.best_s),
            fixed(static_cast<double>(requests) / on.best_s, 0),
            fixed(overhead_pct, 2) + "%");
  std::cout << table;
  std::cout << "\nserved plans bit-identical with tracing attached: "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "wide events: " << on.wide_events << ", spans: " << on.spans
            << ", tracing cost " << fixed(per_request_us, 2)
            << " us/request\noverhead budget: " << fixed(max_overhead_pct, 1)
            << "%\n";

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "trace_overhead");
  doc.set("program", testsuite_id(suite));
  doc.set("requests", requests);
  doc.set("reps", static_cast<long>(reps));
  doc.set("disabled_best_s", off.best_s);
  doc.set("traced_best_s", on.best_s);
  doc.set("overhead_pct", overhead_pct);
  doc.set("per_request_us", per_request_us);
  doc.set("wide_events", on.wide_events);
  doc.set("spans_recorded", on.spans);
  doc.set("identical_outcome", identical);
  write_bench_metrics("trace_overhead", doc);

  if (!identical) {
    std::cerr << "FAIL: served plans changed with tracing attached\n";
    return 1;
  }
  if (max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct) {
    std::cerr << "FAIL: tracing overhead " << fixed(overhead_pct, 2)
              << "% exceeds budget " << fixed(max_overhead_pct, 1) << "%\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
