// Evaluation-engine throughput: sharded cache + batched population scoring
// vs the pre-PR global-mutex cache.
//
// The search spends almost all of its time scoring plans against the
// group-cost cache (the paper's 5.4e6-evaluation runs are >99% cache
// hits), so the hit path is the figure of merit. This bench replays a
// fixed pool of random legal plans over a warm cache through three
// engines:
//
//   legacy-mutex  in-bench replica of the pre-PR path: copy+sort
//                 fingerprint, quarantine check and lookup each behind one
//                 global std::mutex (2 acquisitions per hit, 3 per miss);
//   sharded       Objective::plan_cost — allocation-free commutative
//                 fingerprint, one shared lock on one cache shard per hit;
//   batched       Objective::plan_costs — whole-pool scoring: probe,
//                 deduplicate unseen fingerprints, evaluate only those,
//                 then pure cache reads.
//
// All three produce bit-identical per-plan costs (asserted); the report
// is group evaluations per second plus the sharded cache's statistics.
// The JSON mirror (BENCH_eval_throughput.json) feeds the CI perf-smoke
// job, which fails on a large regression vs the committed baseline.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"

namespace kf::bench {
namespace {

/// The seed's fingerprint: allocate, sort, sequential mix.
std::uint64_t legacy_fingerprint(std::span<const KernelId> group) {
  std::vector<KernelId> sorted(group.begin(), group.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (KernelId k : sorted) h = mix64(h ^ (static_cast<std::uint64_t>(k) + 0x9e37));
  return h;
}

/// Replica of the pre-PR cache path. Model evaluations are delegated to an
/// uncached Objective so the miss cost is identical to the real engines' —
/// only the per-query overhead (fingerprint + locking) differs.
struct LegacyMutexEngine {
  explicit LegacyMutexEngine(const Objective& uncached) : objective(uncached) {}

  GroupCost group_cost(std::span<const KernelId> group) {
    evaluations.fetch_add(1, std::memory_order_relaxed);  // as the seed did
    const std::uint64_t key = legacy_fingerprint(group);
    {
      std::lock_guard<std::mutex> lock(mutex);  // acquisition 1: quarantine
      if (quarantined.count(key) != 0) return GroupCost{};
    }
    {
      std::lock_guard<std::mutex> lock(mutex);  // acquisition 2: lookup
      const auto it = cache.find(key);
      if (it != cache.end()) return it->second;
    }
    const GroupCost cost = objective.group_cost(group);
    {
      std::lock_guard<std::mutex> lock(mutex);  // acquisition 3: insert
      cache.emplace(key, cost);
    }
    return cost;
  }

  double plan_cost(const FusionPlan& plan) {
    double total = 0.0;
    for (int g = 0; g < plan.num_groups(); ++g) {
      total += group_cost(plan.group(g)).cost_s;
    }
    return total;
  }

  const Objective& objective;
  std::atomic<long> evaluations{0};
  std::mutex mutex;
  std::unordered_map<std::uint64_t, GroupCost> cache;
  std::unordered_set<std::uint64_t> quarantined;
};

struct Phase {
  std::string name;
  double evals_per_s = 0.0;
  double plans_per_s = 0.0;
  long rounds = 0;
  std::vector<double> costs;  ///< per-plan costs of the last round
};

/// Runs score_round (which must fill `costs`) warm, then timed rounds
/// until `target_s` has elapsed (at least 3 rounds).
template <typename Fn>
Phase run_phase(const std::string& name, long groups_per_round,
                std::size_t plans_per_round, double target_s, Fn&& score_round) {
  Phase phase;
  phase.name = name;
  score_round(phase.costs);  // warm the engine's cache
  Stopwatch watch;
  while (watch.elapsed_s() < target_s || phase.rounds < 3) {
    score_round(phase.costs);
    ++phase.rounds;
  }
  const double secs = watch.elapsed_s();
  phase.evals_per_s = static_cast<double>(groups_per_round * phase.rounds) / secs;
  phase.plans_per_s =
      static_cast<double>(plans_per_round) * static_cast<double>(phase.rounds) / secs;
  return phase;
}

int run(int argc, char** argv) {
  double min_speedup = 0.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0) min_speedup = std::atof(argv[i + 1]);
  }

  print_header("Evaluation-engine throughput: sharded cache + batched scoring",
               "the evaluation-engine redesign; cf. paper Table VI eval counts");

  TestSuiteConfig suite;
  suite.kernels = 64;
  suite.arrays = 128;
  suite.seed = 7;
  BenchPipeline pipe(make_testsuite_program(suite), DeviceSpec::k20x());

  // The legacy engine computes misses through an uncached objective so its
  // only advantage-relevant difference is the query overhead itself.
  Objective::Options uncached;
  uncached.enable_cache = false;
  Objective legacy_objective(pipe.checker, pipe.model, pipe.sim, uncached);

  const std::size_t pool_size = small_scale() ? 48 : 192;
  const double target_s = small_scale() ? 0.15 : 0.6;
  Rng rng(0xbe7c);
  std::vector<FusionPlan> pool;
  pool.reserve(pool_size);
  long groups_per_round = 0;
  for (std::size_t i = 0; i < pool_size; ++i) {
    const double aggressiveness =
        0.2 + 0.7 * static_cast<double>(i) / static_cast<double>(pool_size);
    pool.push_back(random_legal_plan(pipe.checker, rng, aggressiveness));
    groups_per_round += pool.back().num_groups();
  }

  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif
  std::cout << "\n64-kernel test-suite program, " << pool_size
            << " random legal plans (" << groups_per_round
            << " group queries per round), " << threads << " thread(s)\n\n";

  LegacyMutexEngine legacy(legacy_objective);
  const Phase legacy_phase = run_phase(
      "legacy-mutex", groups_per_round, pool.size(), target_s,
      [&](std::vector<double>& costs) {
        costs.assign(pool.size(), 0.0);
#pragma omp parallel for schedule(dynamic)
        for (std::size_t i = 0; i < pool.size(); ++i) {
          costs[i] = legacy.plan_cost(pool[i]);
        }
      });

  pipe.objective.reset_counters();
  const Phase sharded_phase = run_phase(
      "sharded", groups_per_round, pool.size(), target_s,
      [&](std::vector<double>& costs) {
        costs.assign(pool.size(), 0.0);
#pragma omp parallel for schedule(dynamic)
        for (std::size_t i = 0; i < pool.size(); ++i) {
          costs[i] = pipe.objective.plan_cost(pool[i]);
        }
      });

  const Phase batched_phase = run_phase(
      "batched", groups_per_round, pool.size(), target_s,
      [&](std::vector<double>& costs) { costs = pipe.objective.plan_costs(pool); });

  const Objective::CacheStats stats = pipe.objective.cache_stats();
  const bool identical = legacy_phase.costs == sharded_phase.costs &&
                         sharded_phase.costs == batched_phase.costs;
  const double speedup_sharded = sharded_phase.evals_per_s / legacy_phase.evals_per_s;
  const double speedup_batched = batched_phase.evals_per_s / legacy_phase.evals_per_s;

  TextTable table({"engine", "evals/s", "plans/s", "rounds", "speedup"});
  table.add(legacy_phase.name, fixed(legacy_phase.evals_per_s / 1e6, 2) + "M",
            fixed(legacy_phase.plans_per_s / 1e3, 1) + "k", legacy_phase.rounds,
            "1.00x");
  table.add(sharded_phase.name, fixed(sharded_phase.evals_per_s / 1e6, 2) + "M",
            fixed(sharded_phase.plans_per_s / 1e3, 1) + "k", sharded_phase.rounds,
            fixed(speedup_sharded, 2) + "x");
  table.add(batched_phase.name, fixed(batched_phase.evals_per_s / 1e6, 2) + "M",
            fixed(batched_phase.plans_per_s / 1e3, 1) + "k", batched_phase.rounds,
            fixed(speedup_batched, 2) + "x");
  std::cout << table;

  std::cout << "\nper-plan costs bit-identical across engines: "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "sharded cache: " << stats.entries << " entries / " << stats.shards
            << " shards, hit rate " << fixed(100.0 * stats.hit_rate(), 2)
            << "%, duplicate misses " << stats.duplicate_misses
            << ", lock waits " << stats.shard_contention << "\n";

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "eval_throughput");
  doc.set("program", testsuite_id(suite));
  doc.set("threads", static_cast<long>(threads));
  doc.set("plans", static_cast<long>(pool_size));
  doc.set("groups_per_round", groups_per_round);
  doc.set("legacy_evals_per_s", legacy_phase.evals_per_s);
  doc.set("sharded_evals_per_s", sharded_phase.evals_per_s);
  doc.set("batched_evals_per_s", batched_phase.evals_per_s);
  doc.set("speedup_sharded", speedup_sharded);
  doc.set("speedup_batched", speedup_batched);
  doc.set("cache_hit_rate", stats.hit_rate());
  doc.set("cache_entries", static_cast<long>(stats.entries));
  doc.set("cache_shards", static_cast<long>(stats.shards));
  doc.set("duplicate_misses", stats.duplicate_misses);
  doc.set("shard_contention", stats.shard_contention);
  doc.set("identical_costs", identical);
  write_bench_metrics("eval_throughput", doc);

  if (!identical) {
    std::cerr << "FAIL: engines disagree on plan costs\n";
    return 1;
  }
  if (min_speedup > 0.0 &&
      std::max(speedup_sharded, speedup_batched) < min_speedup) {
    std::cerr << "FAIL: best speedup "
              << fixed(std::max(speedup_sharded, speedup_batched), 2)
              << "x below required " << fixed(min_speedup, 2) << "x\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
