// Evaluation-engine throughput: sharded cache + batched population scoring
// vs the pre-PR global-mutex cache.
//
// The search spends almost all of its time scoring plans against the
// group-cost cache (the paper's 5.4e6-evaluation runs are >99% cache
// hits), so the hit path is the figure of merit. This bench replays a
// fixed pool of random legal plans over a warm cache through three
// engines:
//
//   legacy-mutex  in-bench replica of the pre-PR path: copy+sort
//                 fingerprint, quarantine check and lookup each behind one
//                 global std::mutex (2 acquisitions per hit, 3 per miss);
//   sharded       Objective::plan_cost — allocation-free commutative
//                 fingerprint, one shared lock on one cache shard per hit;
//   batched       Objective::plan_costs — whole-pool scoring: probe,
//                 deduplicate unseen fingerprints, evaluate only those,
//                 then pure cache reads;
//   delta         Objective::merge_delta — single-merge move costing: the
//                 union of the two touched groups is resolved directly
//                 from their member spans, every untouched group from the
//                 caller's row costs. One logical plan recost per move is
//                 answered with one group resolution, which is where the
//                 order-of-magnitude throughput step comes from.
//
// The first three produce bit-identical per-plan costs (asserted); the
// delta phase's answers are asserted bit-identical to full recosts of the
// actually-merged plans (summed in merged-plan group order, see DESIGN.md
// item 18). The report is group evaluations per second — for the delta
// phase, the evaluations the other engines would have spent answering the
// same merge queries — plus the sharded cache's statistics. The JSON
// mirror (BENCH_eval_throughput.json) feeds the CI perf-smoke job, which
// fails on a large regression vs the committed baseline and on a delta
// phase slower than 10x the committed batched floor.
#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"

namespace kf::bench {
namespace {

/// The seed's fingerprint: allocate, sort, sequential mix.
std::uint64_t legacy_fingerprint(std::span<const KernelId> group) {
  std::vector<KernelId> sorted(group.begin(), group.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (KernelId k : sorted) h = mix64(h ^ (static_cast<std::uint64_t>(k) + 0x9e37));
  return h;
}

/// Replica of the pre-PR cache path. Model evaluations are delegated to an
/// uncached Objective so the miss cost is identical to the real engines' —
/// only the per-query overhead (fingerprint + locking) differs.
struct LegacyMutexEngine {
  explicit LegacyMutexEngine(const Objective& uncached) : objective(uncached) {}

  GroupCost group_cost(std::span<const KernelId> group) {
    evaluations.fetch_add(1, std::memory_order_relaxed);  // as the seed did
    const std::uint64_t key = legacy_fingerprint(group);
    {
      std::lock_guard<std::mutex> lock(mutex);  // acquisition 1: quarantine
      if (quarantined.count(key) != 0) return GroupCost{};
    }
    {
      std::lock_guard<std::mutex> lock(mutex);  // acquisition 2: lookup
      const auto it = cache.find(key);
      if (it != cache.end()) return it->second;
    }
    const GroupCost cost = objective.group_cost(group);
    {
      std::lock_guard<std::mutex> lock(mutex);  // acquisition 3: insert
      cache.emplace(key, cost);
    }
    return cost;
  }

  double plan_cost(const FusionPlan& plan) {
    double total = 0.0;
    for (int g = 0; g < plan.num_groups(); ++g) {
      total += group_cost(plan.group(g)).cost_s;
    }
    return total;
  }

  const Objective& objective;
  std::atomic<long> evaluations{0};
  std::mutex mutex;
  std::unordered_map<std::uint64_t, GroupCost> cache;
  std::unordered_set<std::uint64_t> quarantined;
};

struct Phase {
  std::string name;
  double evals_per_s = 0.0;
  double plans_per_s = 0.0;
  long rounds = 0;
  std::vector<double> costs;  ///< per-plan costs of the last round
};

/// Runs score_round (which must fill `costs`) warm, then timed rounds
/// until `target_s` has elapsed (at least 3 rounds).
template <typename Fn>
Phase run_phase(const std::string& name, long groups_per_round,
                std::size_t plans_per_round, double target_s, Fn&& score_round) {
  Phase phase;
  phase.name = name;
  score_round(phase.costs);  // warm the engine's cache
  Stopwatch watch;
  while (watch.elapsed_s() < target_s || phase.rounds < 3) {
    score_round(phase.costs);
    ++phase.rounds;
  }
  const double secs = watch.elapsed_s();
  phase.evals_per_s = static_cast<double>(groups_per_round * phase.rounds) / secs;
  phase.plans_per_s =
      static_cast<double>(plans_per_round) * static_cast<double>(phase.rounds) / secs;
  return phase;
}

int run(int argc, char** argv) {
  double min_speedup = 0.0;
  double min_delta_speedup = 0.0;  // delta evals/s over batched evals/s
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0) min_speedup = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--min-delta-speedup") == 0) {
      min_delta_speedup = std::atof(argv[i + 1]);
    }
  }

  print_header("Evaluation-engine throughput: sharded cache + batched scoring",
               "the evaluation-engine redesign; cf. paper Table VI eval counts");

  TestSuiteConfig suite;
  suite.kernels = 64;
  suite.arrays = 128;
  suite.seed = 7;
  BenchPipeline pipe(make_testsuite_program(suite), DeviceSpec::k20x());

  // The legacy engine computes misses through an uncached objective so its
  // only advantage-relevant difference is the query overhead itself.
  Objective::Options uncached;
  uncached.enable_cache = false;
  Objective legacy_objective(pipe.checker, pipe.model, pipe.sim, uncached);

  const std::size_t pool_size = small_scale() ? 48 : 192;
  const double target_s = small_scale() ? 0.15 : 0.6;
  Rng rng(0xbe7c);
  std::vector<FusionPlan> pool;
  pool.reserve(pool_size);
  long groups_per_round = 0;
  for (std::size_t i = 0; i < pool_size; ++i) {
    const double aggressiveness =
        0.2 + 0.7 * static_cast<double>(i) / static_cast<double>(pool_size);
    pool.push_back(random_legal_plan(pipe.checker, rng, aggressiveness));
    groups_per_round += pool.back().num_groups();
  }

  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif
  std::cout << "\n64-kernel test-suite program, " << pool_size
            << " random legal plans (" << groups_per_round
            << " group queries per round), " << threads << " thread(s)\n\n";

  LegacyMutexEngine legacy(legacy_objective);
  const Phase legacy_phase = run_phase(
      "legacy-mutex", groups_per_round, pool.size(), target_s,
      [&](std::vector<double>& costs) {
        costs.assign(pool.size(), 0.0);
#pragma omp parallel for schedule(dynamic)
        for (std::size_t i = 0; i < pool.size(); ++i) {
          costs[i] = legacy.plan_cost(pool[i]);
        }
      });

  pipe.objective.reset_counters();
  const Phase sharded_phase = run_phase(
      "sharded", groups_per_round, pool.size(), target_s,
      [&](std::vector<double>& costs) {
        costs.assign(pool.size(), 0.0);
#pragma omp parallel for schedule(dynamic)
        for (std::size_t i = 0; i < pool.size(); ++i) {
          costs[i] = pipe.objective.plan_cost(pool[i]);
        }
      });

  const Phase batched_phase = run_phase(
      "batched", groups_per_round, pool.size(), target_s,
      [&](std::vector<double>& costs) { costs = pipe.objective.plan_costs(pool); });

  // ---- delta phase: single-merge move replay (greedy's inner question) ----
  // Each move asks "what does the plan cost after merging groups (gi, gj)?".
  // A full recost answers with one group query per surviving group; the
  // delta engine answers with one union resolution plus pure row reads, so
  // its logical-evaluation credit per move is (num_groups - 1).
  struct MergeMove {
    std::size_t plan;
    int gi;
    int gj;
  };
  std::vector<MergeMove> moves;
  std::vector<std::vector<double>> rows(pool.size());
  long delta_evals_per_round = 0;
  {
    Rng move_rng(0xde17a);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const FusionPlan& plan = pool[i];
      const int n = plan.num_groups();
      rows[i].resize(static_cast<std::size_t>(n));
      for (int g = 0; g < n; ++g) {
        rows[i][static_cast<std::size_t>(g)] =
            pipe.objective.group_cost(plan.group(g)).cost_s;  // warm: all hits
      }
      if (n < 2) continue;
      for (int t = 0; t < 8; ++t) {
        const int gi =
            static_cast<int>(move_rng.next_below(static_cast<std::uint64_t>(n)));
        int gj =
            static_cast<int>(move_rng.next_below(static_cast<std::uint64_t>(n - 1)));
        if (gj >= gi) ++gj;
        moves.push_back(MergeMove{i, std::min(gi, gj), std::max(gi, gj)});
        delta_evals_per_round += n - 1;
      }
    }
  }
  // Replayed serially: greedy's pair scan — the client this move stream
  // mirrors — is a serial loop, and the per-move work is far below the
  // cost of parallel dispatch.
  const Phase delta_phase = run_phase(
      "delta", delta_evals_per_round, moves.size(), target_s,
      [&](std::vector<double>& costs) {
        costs.resize(moves.size());
        for (std::size_t m = 0; m < moves.size(); ++m) {
          const MergeMove& mv = moves[m];
          costs[m] = pipe.objective
                         .merge_delta(pool[mv.plan], mv.gi, mv.gj, rows[mv.plan])
                         .merged.cost_s;
        }
      });

  // Bit-identity of the delta answers: re-summing the cached rows in the
  // merged plan's group order (union at the kept slot, erased slot skipped)
  // must equal a full recost of the actually-merged plan, bit for bit.
  bool delta_identical = true;
  for (const MergeMove& mv : moves) {
    FusionPlan merged = pool[mv.plan];
    merged.merge_groups(mv.gi, mv.gj);
    const double full = pipe.objective.plan_cost(merged);
    const Objective::MergeDelta d =
        pipe.objective.merge_delta(pool[mv.plan], mv.gi, mv.gj, rows[mv.plan]);
    double replay = 0.0;
    for (int g = 0; g < pool[mv.plan].num_groups(); ++g) {
      if (g == mv.gj) continue;
      replay +=
          g == mv.gi ? d.merged.cost_s : rows[mv.plan][static_cast<std::size_t>(g)];
    }
    if (std::bit_cast<std::uint64_t>(replay) != std::bit_cast<std::uint64_t>(full)) {
      delta_identical = false;
    }
  }

  const Objective::CacheStats stats = pipe.objective.cache_stats();
  const bool identical = legacy_phase.costs == sharded_phase.costs &&
                         sharded_phase.costs == batched_phase.costs;
  const double speedup_sharded = sharded_phase.evals_per_s / legacy_phase.evals_per_s;
  const double speedup_batched = batched_phase.evals_per_s / legacy_phase.evals_per_s;
  const double speedup_delta = delta_phase.evals_per_s / legacy_phase.evals_per_s;
  const double delta_vs_batched = delta_phase.evals_per_s / batched_phase.evals_per_s;

  TextTable table({"engine", "evals/s", "plans/s", "rounds", "speedup"});
  table.add(legacy_phase.name, fixed(legacy_phase.evals_per_s / 1e6, 2) + "M",
            fixed(legacy_phase.plans_per_s / 1e3, 1) + "k", legacy_phase.rounds,
            "1.00x");
  table.add(sharded_phase.name, fixed(sharded_phase.evals_per_s / 1e6, 2) + "M",
            fixed(sharded_phase.plans_per_s / 1e3, 1) + "k", sharded_phase.rounds,
            fixed(speedup_sharded, 2) + "x");
  table.add(batched_phase.name, fixed(batched_phase.evals_per_s / 1e6, 2) + "M",
            fixed(batched_phase.plans_per_s / 1e3, 1) + "k", batched_phase.rounds,
            fixed(speedup_batched, 2) + "x");
  table.add(delta_phase.name, fixed(delta_phase.evals_per_s / 1e6, 2) + "M",
            fixed(delta_phase.plans_per_s / 1e3, 1) + "k", delta_phase.rounds,
            fixed(speedup_delta, 2) + "x");
  std::cout << table;

  std::cout << "\nper-plan costs bit-identical across engines: "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "delta merge answers bit-identical to full recosts: "
            << (delta_identical ? "yes" : "NO — BUG") << "\n"
            << "delta vs batched: " << fixed(delta_vs_batched, 2) << "x ("
            << moves.size() << " merge moves/round)\n"
            << "sharded cache: " << stats.entries << " entries / " << stats.shards
            << " shards, hit rate " << fixed(100.0 * stats.hit_rate(), 2)
            << "%, duplicate misses " << stats.duplicate_misses
            << ", lock waits " << stats.shard_contention << "\n"
            << "delta counters: " << stats.delta_hits << " incremental hits, "
            << stats.delta_full_recosts << " full recosts, "
            << stats.delta_mismatches << " mismatches\n";

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "eval_throughput");
  doc.set("program", testsuite_id(suite));
  doc.set("threads", static_cast<long>(threads));
  doc.set("plans", static_cast<long>(pool_size));
  doc.set("groups_per_round", groups_per_round);
  doc.set("legacy_evals_per_s", legacy_phase.evals_per_s);
  doc.set("sharded_evals_per_s", sharded_phase.evals_per_s);
  doc.set("batched_evals_per_s", batched_phase.evals_per_s);
  doc.set("delta_evals_per_s", delta_phase.evals_per_s);
  doc.set("speedup_sharded", speedup_sharded);
  doc.set("speedup_batched", speedup_batched);
  doc.set("speedup_delta", speedup_delta);
  doc.set("delta_vs_batched", delta_vs_batched);
  doc.set("merge_moves", static_cast<long>(moves.size()));
  doc.set("delta_hits", stats.delta_hits);
  doc.set("delta_full_recosts", stats.delta_full_recosts);
  doc.set("delta_mismatches", stats.delta_mismatches);
  doc.set("delta_identical", delta_identical);
  doc.set("cache_hit_rate", stats.hit_rate());
  doc.set("cache_entries", static_cast<long>(stats.entries));
  doc.set("cache_shards", static_cast<long>(stats.shards));
  doc.set("duplicate_misses", stats.duplicate_misses);
  doc.set("shard_contention", stats.shard_contention);
  doc.set("identical_costs", identical);
  write_bench_metrics("eval_throughput", doc);

  if (!identical) {
    std::cerr << "FAIL: engines disagree on plan costs\n";
    return 1;
  }
  if (!delta_identical || stats.delta_mismatches != 0) {
    std::cerr << "FAIL: delta merge answers diverge from full recosts\n";
    return 1;
  }
  if (min_speedup > 0.0 &&
      std::max(speedup_sharded, speedup_batched) < min_speedup) {
    std::cerr << "FAIL: best speedup "
              << fixed(std::max(speedup_sharded, speedup_batched), 2)
              << "x below required " << fixed(min_speedup, 2) << "x\n";
    return 1;
  }
  if (min_delta_speedup > 0.0 && delta_vs_batched < min_delta_speedup) {
    std::cerr << "FAIL: delta costing " << fixed(delta_vs_batched, 2)
              << "x over batched, below required "
              << fixed(min_delta_speedup, 2) << "x\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
