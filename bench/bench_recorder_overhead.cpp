// Flight-recorder overhead smoke: serving throughput with the always-on
// black box attached vs. a bare PlanServer.
//
// The flight recorder's contract is "always-on": it records every request
// (one lock-free ring claim + a ~184-byte in-place fill), publishes the
// in-flight table at stage boundaries (a handful of relaxed stores) and
// bumps the state page — all on the serving hot path. The incident-capture
// PR budgets <2% for that on the warmed store-hit path. This bench warms a
// shared store, replays a request stream through a bare server and a
// recorder-attached one interleaved, and fails when the overhead exceeds
// the budget (--max-overhead PCT, default 2%). Both streams must serve
// bit-identical plans — a recorder that changed a response would be a far
// worse bug than a slow one.
//
// The JSON mirror (BENCH_recorder_overhead.json) feeds the CI incident job.
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/plan_server.hpp"
#include "store/plan_store.hpp"
#include "telemetry/flight_recorder.hpp"

namespace kf::bench {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/kf_bench_recorder_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct Stream {
  double best_s = 1e300;  ///< best-of-N wall time for the request loop
  std::vector<std::string> plans;
};

int run(int argc, char** argv) {
  double max_overhead_pct = 2.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--max-overhead") == 0)
      max_overhead_pct = std::atof(argv[i + 1]);
  }

  print_header("Flight-recorder overhead on the serving path",
               "the incident-capture PR's <2% always-on recording budget");

  // Same workload shape as bench_trace_overhead: a 256-kernel test-suite
  // program on two devices, so the floor is the steady-state store-hit
  // path on an application-scale program.
  TestSuiteConfig suite;
  suite.kernels = 256;
  suite.arrays = 512;
  suite.seed = 7;
  const Program program = make_testsuite_program(suite);
  const std::vector<DeviceSpec> devices = {DeviceSpec::k20x(),
                                           DeviceSpec::k40()};
  const long requests = small_scale() ? 200 : 1000;
  const int reps = small_scale() ? 3 : 5;

  // One SHARED store, warmed once, so both timed loops replay hits on the
  // exact same stored plans (see bench_trace_overhead for why).
  PlanStore store({.dir = fresh_dir("shared"), .durable = false});
  PlanServer bare(store, PlanServerConfig{});

  FlightRecorder recorder;
  Telemetry telemetry;
  telemetry.recorder = &recorder;
  PlanServerConfig recorded_cfg;
  recorded_cfg.telemetry = &telemetry;
  PlanServer recorded(store, recorded_cfg);

  for (const DeviceSpec& d : devices) {
    bare.serve(program, d);
    recorded.serve(program, d);
  }

  Stream off;
  Stream on;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave the configurations so drift hits both evenly.
    {
      off.plans.clear();
      Stopwatch watch;
      for (long i = 0; i < requests; ++i) {
        const ServeResult r =
            bare.serve(program, devices[static_cast<std::size_t>(i) %
                                        devices.size()]);
        off.plans.push_back(r.plan.to_string());
      }
      const double secs = watch.elapsed_s();
      if (secs < off.best_s) off.best_s = secs;
    }
    {
      on.plans.clear();
      Stopwatch watch;
      for (long i = 0; i < requests; ++i) {
        const ServeResult r =
            recorded.serve(program, devices[static_cast<std::size_t>(i) %
                                            devices.size()]);
        on.plans.push_back(r.plan.to_string());
      }
      const double secs = watch.elapsed_s();
      if (secs < on.best_s) on.best_s = secs;
    }
  }

  const double overhead_pct = 100.0 * (on.best_s / off.best_s - 1.0);
  const bool identical = off.plans == on.plans;
  const double per_request_us =
      1e6 * (on.best_s - off.best_s) / static_cast<double>(requests);

  TextTable table({"recorder", "best-of-" + std::to_string(reps),
                   "req/s", "overhead"});
  table.add("detached", human_time(off.best_s),
            fixed(static_cast<double>(requests) / off.best_s, 0), "--");
  table.add("attached", human_time(on.best_s),
            fixed(static_cast<double>(requests) / on.best_s, 0),
            fixed(overhead_pct, 2) + "%");
  std::cout << table;
  std::cout << "\nserved plans bit-identical with recorder attached: "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "records: " << recorder.recorded() << " recorded, "
            << recorder.dropped() << " dropped, recording cost "
            << fixed(per_request_us, 2) << " us/request\noverhead budget: "
            << fixed(max_overhead_pct, 1) << "%\n";

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "recorder_overhead");
  doc.set("program", testsuite_id(suite));
  doc.set("requests", requests);
  doc.set("reps", static_cast<long>(reps));
  doc.set("bare_best_s", off.best_s);
  doc.set("recorded_best_s", on.best_s);
  doc.set("overhead_pct", overhead_pct);
  doc.set("per_request_us", per_request_us);
  doc.set("records_recorded", recorder.recorded());
  doc.set("records_dropped", recorder.dropped());
  doc.set("identical_outcome", identical);
  write_bench_metrics("recorder_overhead", doc);

  if (!identical) {
    std::cerr << "FAIL: served plans changed with the recorder attached\n";
    return 1;
  }
  if (max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct) {
    std::cerr << "FAIL: recorder overhead " << fixed(overhead_pct, 2)
              << "% exceeds budget " << fixed(max_overhead_pct, 1) << "%\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
