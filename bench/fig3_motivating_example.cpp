// Fig. 3 / §IV — the motivating example: kernels A..E fused into X = {A, B}
// (complex fusion with a recomputed halo) and Y = {C, D, E} (simple
// fusion), with the three projection models' verdicts on Kernel Y.
//
// Paper numbers on K20X: original sum of C+D+E 519 us, fused Y measured
// 554 us (a slowdown!), Roofline projected 336 us, simple model 410 us,
// proposed model 564 us. We reproduce the *ordering*: Roofline < simple <
// original sum < proposed, with the proposed model alone rejecting the
// fusion; and X remaining profitable.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  bench::print_header("Fig. 3 / §IV: Motivating example (kernels A-E -> X, Y)",
                      "paper Fig. 3 and the §IV model comparison");

  const Program program = motivating_example();
  const DeviceSpec device = DeviceSpec::k20x();
  const TimingSimulator sim(device);
  const LegalityChecker checker(program, device);
  const FusedKernelBuilder builder(program);
  const RooflineModel roofline(device);
  const SimpleModel simple(program, sim);
  const ProposedModel literal(device,
                              {.formulation = ProposedModel::Formulation::PaperLiteral});
  const ProposedModel calibrated(device);

  // Per-original-kernel runtimes.
  TextTable originals({"kernel", "measured", "GMEM traffic"});
  for (KernelId k = 0; k < program.num_kernels(); ++k) {
    const SimResult r = sim.run_original(program, k);
    originals.add(program.kernel(k).name, human_time(r.time_s),
                  human_bytes(r.traffic.gmem_total()));
  }
  std::cout << "\nOriginal kernels:\n" << originals;

  TextTable fusions({"new kernel", "type", "orig sum", "measured", "roofline",
                     "simple", "proposed(lit)", "proposed(cal)", "verdict"});
  struct Case {
    const char* name;
    std::vector<std::string> members;
  };
  const Case cases[] = {{"Kernel X", {"Kern_A", "Kern_B"}},
                        {"Kernel Y", {"Kern_C", "Kern_D", "Kern_E"}}};
  for (const Case& c : cases) {
    std::vector<KernelId> members;
    for (const auto& n : c.members) members.push_back(program.find_kernel(n));
    const LaunchDescriptor d = builder.build(members);
    const double measured = sim.run(program, d).time_s;
    double orig_sum = 0;
    for (KernelId k : members) orig_sum += sim.run_original(program, k).time_s;
    const double t_roof = roofline.project(program, d).time_s;
    const double t_simple = simple.project(program, d).time_s;
    const double t_lit = literal.project(program, d).time_s;
    const double t_cal = calibrated.project(program, d).time_s;
    fusions.add(c.name, d.recompute_halo ? "complex (halo)" : "simple", human_time(orig_sum),
                human_time(measured), human_time(t_roof), human_time(t_simple),
                human_time(t_lit), human_time(t_cal),
                t_cal < orig_sum ? "fuse" : "reject");
  }
  std::cout << "\nFusions and model projections:\n" << fusions;

  std::cout <<
      "\nPaper (K20X, Kernel Y): orig sum 519 us, measured 554 us,\n"
      "Roofline 336 us, simple 410 us, proposed 564 us -> only the proposed\n"
      "model rejects the fusion, and the measurement proves it right.\n"
      "Check the same shape above: roofline < simple < orig sum <\n"
      "proposed(cal) ~ measured for Kernel Y (register pressure from the\n"
      "division-heavy C/D/E kernels), while Kernel X stays profitable and\n"
      "is correctly accepted.\n";
  return 0;
}
