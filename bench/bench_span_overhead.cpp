// Span-profiler overhead smoke: HGGA wall time with a SpanTracer attached
// vs. fully disabled telemetry on the 64-kernel test-suite program.
//
// The observability layer's contract is that an attached span tracer stays
// out of the search's way: spans are opened at phase granularity
// (generation / breed / plan_costs batch), not per group query, so the
// instrumented run must stay within a few percent of the bare one. This
// bench measures best-of-N wall time for both configurations on a warm
// group-cost cache and fails when the overhead exceeds the budget
// (--max-overhead PCT, default 3%). Both runs must also produce the exact
// same search outcome — attaching a tracer that changed the result would
// be a far worse bug than a slow one.
//
// The JSON mirror (BENCH_span_overhead.json) feeds the CI perf-smoke job.
#include <cstring>
#include <vector>

#include "bench_common.hpp"

namespace kf::bench {
namespace {

struct Sample {
  double best_s = 1e300;  ///< best-of-N wall time
  double cost_s = 0.0;
  std::string plan;
  long spans = 0;
};

int run(int argc, char** argv) {
  double max_overhead_pct = 3.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--max-overhead") == 0)
      max_overhead_pct = std::atof(argv[i + 1]);
  }

  print_header("Span-profiler overhead on the 64-kernel test suite",
               "the observability layer's <3% span-overhead budget");

  TestSuiteConfig suite;
  suite.kernels = 64;
  suite.arrays = 128;
  suite.seed = 7;
  BenchPipeline pipe(make_testsuite_program(suite), DeviceSpec::k20x());

  HggaConfig config;
  config.population = small_scale() ? 24 : 48;
  config.max_generations = small_scale() ? 15 : 50;
  config.stall_generations = config.max_generations;
  config.seed = 0x5eed;

  const int reps = small_scale() ? 3 : 5;

  // Warm the group-cost cache so both configurations measure the steady
  // state (the first run pays every model evaluation).
  pipe.search(config);

  Sample off;
  Sample on;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave the configurations so drift (thermal, noisy neighbours)
    // hits both evenly.
    {
      pipe.objective.set_telemetry(nullptr);
      Stopwatch watch;
      const SearchResult r = Hgga(pipe.objective, config).run();
      const double secs = watch.elapsed_s();
      if (secs < off.best_s) off.best_s = secs;
      off.cost_s = r.best_cost_s;
      off.plan = r.best.to_string();
    }
    {
      SpanTracer spans;
      Telemetry telemetry;
      telemetry.spans = &spans;
      pipe.objective.set_telemetry(&telemetry);
      Stopwatch watch;
      const SearchResult r =
          Hgga(pipe.objective, config).run(nullptr, nullptr, &telemetry);
      const double secs = watch.elapsed_s();
      if (secs < on.best_s) on.best_s = secs;
      on.cost_s = r.best_cost_s;
      on.plan = r.best.to_string();
      on.spans = spans.recorded() + spans.dropped();
    }
  }
  pipe.objective.set_telemetry(nullptr);

  const double overhead_pct = 100.0 * (on.best_s / off.best_s - 1.0);
  const bool identical = off.cost_s == on.cost_s && off.plan == on.plan;

  TextTable table({"telemetry", "best-of-" + std::to_string(reps), "spans",
                   "overhead"});
  table.add("disabled", human_time(off.best_s), 0L, "--");
  table.add("spans attached", human_time(on.best_s), on.spans,
            fixed(overhead_pct, 2) + "%");
  std::cout << table;
  std::cout << "\nsearch outcome bit-identical with tracer attached: "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "overhead budget: " << fixed(max_overhead_pct, 1) << "%\n";

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "span_overhead");
  doc.set("program", testsuite_id(suite));
  doc.set("reps", static_cast<long>(reps));
  doc.set("disabled_best_s", off.best_s);
  doc.set("spans_best_s", on.best_s);
  doc.set("overhead_pct", overhead_pct);
  doc.set("spans_recorded", on.spans);
  doc.set("identical_outcome", identical);
  write_bench_metrics("span_overhead", doc);

  if (!identical) {
    std::cerr << "FAIL: search outcome changed with spans attached\n";
    return 1;
  }
  if (max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct) {
    std::cerr << "FAIL: span overhead " << fixed(overhead_pct, 2)
              << "% exceeds budget " << fixed(max_overhead_pct, 1) << "%\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
