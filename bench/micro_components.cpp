// Micro-benchmarks of the pipeline's hot components (google-benchmark):
// the per-call costs behind Table VI's "9.51 minutes for 5.4e6
// evaluations" claim — legality checks, descriptor construction, traffic
// accounting, the three projection models, one HGGA generation, and the
// functional block executor's throughput.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace kf;

const Program& suite_program() {
  static const Program program = [] {
    TestSuiteConfig cfg;
    cfg.kernels = 40;
    cfg.arrays = 80;
    cfg.thread_load = 8;
    cfg.seed = 0xbeef;
    cfg.grid = GridDims{512, 256, 32};
    return make_testsuite_program(cfg);
  }();
  return program;
}

struct Stack {
  DeviceSpec device = DeviceSpec::k20x();
  TimingSimulator sim{device};
  LegalityChecker checker;
  FusedKernelBuilder builder;
  ProposedModel model{device};

  Stack() : checker(suite_program(), device), builder(suite_program()) {}
};

Stack& stack() {
  static Stack s;
  return s;
}

std::vector<KernelId> sample_group() {
  // A mid-sized legal-ish group from the sharing graph.
  const SharingGraph& sharing = stack().checker.sharing();
  std::vector<KernelId> group{0};
  for (KernelId n : sharing.neighbours(0)) {
    group.push_back(n);
    if (group.size() == 4) break;
  }
  return group;
}

void BM_GroupLegality(benchmark::State& state) {
  const auto group = sample_group();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack().checker.check_group(group));
  }
}
BENCHMARK(BM_GroupLegality);

void BM_DescriptorBuild(benchmark::State& state) {
  const auto group = sample_group();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack().builder.build(group));
  }
}
BENCHMARK(BM_DescriptorBuild);

void BM_TrafficModel(benchmark::State& state) {
  const LaunchDescriptor d = stack().builder.build(sample_group());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_traffic(suite_program(), d));
  }
}
BENCHMARK(BM_TrafficModel);

void BM_ProposedProjection(benchmark::State& state) {
  const LaunchDescriptor d = stack().builder.build(sample_group());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack().model.project(suite_program(), d));
  }
}
BENCHMARK(BM_ProposedProjection);

void BM_TimingSimulation(benchmark::State& state) {
  const LaunchDescriptor d = stack().builder.build(sample_group());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack().sim.run(suite_program(), d));
  }
}
BENCHMARK(BM_TimingSimulation);

void BM_ObjectivePlanCost(benchmark::State& state) {
  const Objective objective(stack().checker, stack().model, stack().sim);
  Rng rng(1);
  const FusionPlan plan = random_legal_plan(stack().checker, rng, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.plan_cost(plan));
  }
}
BENCHMARK(BM_ObjectivePlanCost);

void BM_HggaGeneration(benchmark::State& state) {
  const Objective objective(stack().checker, stack().model, stack().sim);
  for (auto _ : state) {
    HggaConfig cfg;
    cfg.population = 30;
    cfg.max_generations = 1;
    cfg.stall_generations = 1;
    cfg.seed = 42;
    Hgga search(objective, cfg);
    benchmark::DoNotOptimize(search.run());
  }
}
BENCHMARK(BM_HggaGeneration)->Unit(benchmark::kMillisecond);

void BM_BlockExecutorLaunch(benchmark::State& state) {
  static const Program program = motivating_example(GridDims{128, 64, 8});
  static GridSet grids(program);
  const BlockExecutor exec(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.run_launch(grids, 0));
  }
  state.SetItemsProcessed(state.iterations() * program.grid().total_sites());
}
BENCHMARK(BM_BlockExecutorLaunch)->Unit(benchmark::kMillisecond);

void BM_ReferenceExecutorKernel(benchmark::State& state) {
  static const Program program = motivating_example(GridDims{128, 64, 8});
  static GridSet grids(program);
  const ReferenceExecutor exec(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.run_kernel(grids, 0));
  }
  state.SetItemsProcessed(state.iterations() * program.grid().total_sites());
}
BENCHMARK(BM_ReferenceExecutorKernel)->Unit(benchmark::kMillisecond);

void BM_DependencyGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(DependencyGraph::build(suite_program()));
  }
}
BENCHMARK(BM_DependencyGraphBuild);

void BM_ExecutionOrderBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutionOrderGraph::build(suite_program()));
  }
}
BENCHMARK(BM_ExecutionOrderBuild);

}  // namespace

BENCHMARK_MAIN();
