// §VI-A / §VI-B.2 — the weak-scaling carry-over claim: "a decrease in
// runtime for a single node would yield almost the same decrease in
// runtime when using multiple nodes (assuming overlapped computation and
// communication)".
//
// For SCALE-LES and HOMME we project per-step times at 1..256 nodes (weak
// scaling, paper-testbed interconnect) before and after fusion and report
// the speedup retention at scale — plus the point at which the assumption
// breaks (communication no longer hidden by the *shorter* fused compute).
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Weak scaling: does the single-node speedup carry over?",
                      "the §VI-A / §VI-B.2 weak-scaling argument");

  const std::vector<int> nodes{1, 4, 16, 64, 256};
  const NetworkSpec network = NetworkSpec::tsubame2();

  struct AppCase {
    const char* name;
    Program program;
  };
  AppCase cases[] = {{"SCALE-LES", scale_les()}, {"HOMME", homme()}};

  for (AppCase& c : cases) {
    bench::BenchPipeline pipe(std::move(c.program), DeviceSpec::k20x());
    HggaConfig cfg;
    cfg.population = 100;
    cfg.max_generations = small ? 120 : 400;
    cfg.stall_generations = small ? 40 : 120;
    cfg.seed = 0x5ca1e;
    const SearchResult result = pipe.search(cfg);
    const double before_s = pipe.baseline_time();
    const double after_s = pipe.measured_time(result.best);

    const WeakScalingProjection before =
        project_weak_scaling(pipe.expansion.program, before_s, network, nodes);
    const WeakScalingProjection after =
        project_weak_scaling(pipe.expansion.program, after_s, network, nodes);

    std::cout << "\n--- " << c.name << " (single-node speedup "
              << fixed(before_s / after_s, 2) << "x) ---\n\n";
    TextTable table({"nodes", "comm/step", "step (unfused)", "step (fused)",
                     "speedup", "efficiency (fused)"});
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const WeakScalingPoint& b = before.points[i];
      const WeakScalingPoint& a = after.points[i];
      table.add(b.nodes, human_time(a.comm_s), human_time(b.step_s),
                human_time(a.step_s), fixed(b.step_s / a.step_s, 2) + "x",
                fixed(100 * a.efficiency, 1) + "%");
    }
    std::cout << table;
    std::cout << "\nSpeedup retention at " << nodes.back() << " nodes: "
              << fixed(100 * WeakScalingProjection::speedup_retention(before, after), 1)
              << "% of the single-node speedup\n";
  }

  std::cout << "\nShape check (paper §VI): with overlapped communication the\n"
               "fusion speedup carries to scale nearly unchanged; retention\n"
               "only erodes when the fused (shorter) compute can no longer\n"
               "hide the fixed halo-exchange cost.\n";
  return 0;
}
