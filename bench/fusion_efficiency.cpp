// §VI-F — Fusion Efficiency: how much of the GMEM-operation reduction is
// realised as runtime reduction.
//
//   FE = (ops_fused / ops_original) / (T_fused / T_original)    (Eq. 12)
//
// Operation counts come from the *functional* block executor (element-exact
// loads/stores of both program versions); runtimes from the timing
// simulator. Paper: FE between 87% and 96% across the suite and both
// applications, slightly higher on Maxwell.
#include "bench_common.hpp"

namespace {

struct FeResult {
  double fe = 0.0;
  double op_ratio = 0.0;       // profiler-style GMEM transactions (traffic model)
  double func_op_ratio = 0.0;  // element-exact ops from the functional executor
  double time_ratio = 0.0;
};

FeResult fusion_efficiency_for(const kf::Program& program, const kf::DeviceSpec& device,
                               std::uint64_t seed) {
  using namespace kf;
  bench::BenchPipeline pipe(program, device);
  const SearchResult result = pipe.search(50, 200, 60, seed);
  const FusedProgram fused = apply_fusion(pipe.checker, result.best);

  // Profiler-style transaction counts (what the paper's Eq. 11 LD/ST
  // numbers are): the traffic model's byte counts over the element size.
  double before_bytes = 0.0;
  for (KernelId k = 0; k < pipe.expansion.program.num_kernels(); ++k) {
    before_bytes +=
        compute_traffic(pipe.expansion.program,
                        descriptor_for_original(pipe.expansion.program, k))
            .gmem_total();
  }
  double after_bytes = 0.0;
  for (const LaunchDescriptor& d : fused.launches) {
    after_bytes += compute_traffic(pipe.expansion.program, d).gmem_total();
  }

  // Element-exact operation counts via the block executor (independent,
  // functional-engine view; assumes ideal per-block staging both sides).
  GridSet before_grids(pipe.expansion.program);
  const ExecCounters before_ops = BlockExecutor(pipe.expansion.program).run(before_grids);
  GridSet after_grids(fused.program);
  const ExecCounters after_ops = BlockExecutor(fused.program).run(after_grids);

  FeResult out;
  out.op_ratio = after_bytes / before_bytes;
  out.func_op_ratio = after_ops.gmem_ops() / before_ops.gmem_ops();
  out.time_ratio = pipe.measured_time(result.best) / pipe.baseline_time();
  out.fe = out.op_ratio / out.time_ratio;
  return out;
}

}  // namespace

int main() {
  using namespace kf;
  bench::print_header("§VI-F: Fusion Efficiency (FE, Eq. 12)", "paper §VI-F");

  TextTable table({"workload", "device", "GMEM op ratio", "functional op ratio",
                   "runtime ratio", "FE"});
  RunningStats kepler_fe;
  RunningStats maxwell_fe;

  struct Load {
    std::string name;
    Program program;
  };
  std::vector<Load> loads;
  loads.push_back({"rk18 (SCALE-LES RK3)", scale_les_rk18(GridDims{256, 64, 16})});
  loads.push_back({"cloverleaf", cloverleaf(GridDims{256, 256, 1})});
  loads.push_back({"shallow-water", shallow_water(GridDims{256, 256, 1})});
  for (int kernels : {10, 20}) {
    TestSuiteConfig cfg;
    cfg.kernels = kernels;
    cfg.arrays = 2 * kernels;
    cfg.thread_load = 8;
    cfg.with_bodies = true;
    cfg.grid = GridDims{128, 64, 8};
    cfg.seed = 7100 + static_cast<std::uint64_t>(kernels);
    loads.push_back({"suite " + testsuite_id(cfg), make_testsuite_program(cfg)});
  }

  for (const Load& load : loads) {
    for (const DeviceSpec& device : {DeviceSpec::k20x(), DeviceSpec::gtx750ti()}) {
      const Program program = device.name == "GTX750Ti"
                                  ? load.program.with_precision(4)
                                  : load.program;
      const FeResult r = fusion_efficiency_for(program, device, 0xfe);
      (device.name == "K20X" ? kepler_fe : maxwell_fe).add(r.fe);
      table.add(load.name, device.name, fixed(r.op_ratio, 3),
                fixed(r.func_op_ratio, 3), fixed(r.time_ratio, 3),
                fixed(100 * r.fe, 1) + "%");
    }
  }
  std::cout << table;
  std::cout << "\nMean FE: K20X " << fixed(100 * kepler_fe.mean(), 1) << "%, GTX750Ti "
            << fixed(100 * maxwell_fe.mean(), 1) << "%\n"
            << "Paper: FE between 87% and 96%, slightly higher on Maxwell.\n"
            << "The shortfall from 100% is the §VI-F inefficiency list: SMEM\n"
               "latency for reused arrays, divergence at unaligned bounds,\n"
               "occupancy loss to register pressure, barrier overhead, and\n"
               "lost cross-block L2 hits.\n";
  return 0;
}
