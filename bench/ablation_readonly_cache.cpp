// Ablation — the §II-C read-only cache optimisation: serving program-wide
// read-only shared arrays from Kepler's 48 KB read-only cache instead of
// SMEM "relaxes the on-chip memory capacity limit". We compare search
// outcomes with the optimisation off and on, on a device whose SMEM is
// made scarce (16 KB) so the capacity limit actually binds.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Ablation: read-only cache offload on/off",
                      "§II-C's read-only cache discussion");

  TextTable table({"workload", "rocache", "projected speedup", "measured speedup",
                   "new kernels", "avg SMEM/block"});

  struct Load {
    std::string name;
    Program program;
  };
  std::vector<Load> loads;
  {
    TestSuiteConfig cfg;
    cfg.kernels = small ? 20 : 30;
    cfg.arrays = 2 * cfg.kernels;
    cfg.thread_load = 8;
    cfg.seed = 0x70c;
    cfg.grid = GridDims{512, 256, 32};
    Program p = make_testsuite_program(cfg);
    mark_readonly_arrays(p);
    loads.push_back({"suite " + testsuite_id(cfg), std::move(p)});
  }
  {
    Program p = scale_les_rk18();
    mark_readonly_arrays(p);
    loads.push_back({"rk18", std::move(p)});
  }

  // SMEM scarce enough that the capacity constraint binds.
  DeviceSpec device = DeviceSpec::k20x().with_smem_capacity(16 * 1024);

  for (const Load& load : loads) {
    for (const bool enable : {false, true}) {
      const ExpansionResult expansion = expand_arrays(load.program);
      const TimingSimulator sim(device);
      FusionCostParams params;
      params.rocache_bytes = enable ? -1 : 0;  // -1: use device capacity
      const LegalityChecker checker(expansion.program, device, params);
      const ProposedModel model(device);
      const Objective objective(checker, model, sim);
      HggaConfig cfg;
      cfg.population = 60;
      cfg.max_generations = small ? 100 : 300;
      cfg.stall_generations = small ? 35 : 90;
      cfg.seed = 0x70c;
      const SearchResult result = Hgga(objective, cfg).run();

      const FusedProgram fused = apply_fusion(checker, result.best);
      double measured = 0;
      double smem = 0;
      int fused_count = 0;
      for (const LaunchDescriptor& d : fused.launches) {
        measured += sim.run(expansion.program, d).time_s;
        if (d.is_fused()) {
          smem += static_cast<double>(d.smem_per_block_bytes);
          ++fused_count;
        }
      }
      const double baseline = sim.program_time(expansion.program);
      table.add(load.name, enable ? "on" : "off",
                fixed(result.baseline_cost_s / result.best_cost_s, 2) + "x",
                fixed(baseline / measured, 2) + "x",
                static_cast<long>(result.best.fused_group_count()),
                human_bytes(fused_count ? smem / fused_count : 0.0));
    }
  }
  std::cout << table;
  std::cout << "\nShape check: offloading read-only shared arrays frees SMEM\n"
               "(lower average footprint), admits more/larger fusions under a\n"
               "tight capacity, and lifts the achieved speedup.\n";
  return 0;
}
