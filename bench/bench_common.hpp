// Shared scaffolding for the bench binaries.
//
// Every bench reproduces one table/figure of the paper and prints a
// paper-style text table plus a short commentary comparing the measured
// shape against the published numbers. BenchPipeline bundles the standard
// analysis stack (expansion -> graphs -> simulator -> model -> objective)
// for one (program, device) pair.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "kf.hpp"

namespace kf::bench {

/// KF_BENCH_SCALE=small shrinks search budgets for smoke runs.
inline bool small_scale() {
  const char* v = std::getenv("KF_BENCH_SCALE");
  return v != nullptr && std::string(v) == "small";
}

/// With KF_BENCH_METRICS_DIR set, writes `doc` to
/// $KF_BENCH_METRICS_DIR/BENCH_<name>.json so CI and sweep scripts can
/// diff bench runs without scraping the text tables; a no-op otherwise.
inline void write_bench_metrics(const std::string& name, const JsonValue& doc) {
  const char* dir = std::getenv("KF_BENCH_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write bench metrics to " << path << "\n";
    return;
  }
  os << doc.to_string(2) << "\n";
  std::cerr << "wrote " << path << "\n";
}

/// The standard run-metrics document for one bench search (schema
/// kf-bench-metrics/v1; a sibling of the CLI's kfc-metrics/v1 "run" block).
inline JsonValue bench_metrics_json(const std::string& bench,
                                    const std::string& program,
                                    const SearchResult& result) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", bench);
  doc.set("program", program);
  doc.set("best_cost_s", result.best_cost_s);
  doc.set("baseline_cost_s", result.baseline_cost_s);
  doc.set("speedup", result.projected_speedup());
  doc.set("generations", static_cast<long>(result.generations));
  doc.set("evaluations", result.evaluations);
  doc.set("model_evaluations", result.model_evaluations);
  doc.set("faults", result.fault_report.faults);
  doc.set("stop_reason", to_string(result.fault_report.stop_reason));
  doc.set("runtime_s", result.runtime_s);
  doc.set("time_to_best_s", result.time_to_best_s);
  doc.set("launches", static_cast<long>(result.best.num_groups()));
  doc.set("fused_groups", static_cast<long>(result.best.fused_group_count()));
  return doc;
}

struct BenchPipeline {
  Program original;
  ExpansionResult expansion;
  DeviceSpec device;
  TimingSimulator sim;
  LegalityChecker checker;
  ProposedModel model;
  Objective objective;

  BenchPipeline(Program program, DeviceSpec dev)
      : original(std::move(program)),
        expansion(expand_arrays(original)),
        device(std::move(dev)),
        sim(device),
        checker(expansion.program, device),
        model(device),
        objective(checker, model, sim) {}

  SearchResult search(const HggaConfig& config) { return Hgga(objective, config).run(); }

  SearchResult search(int population, int max_generations, int stall,
                      std::uint64_t seed = 0x5eed) {
    HggaConfig config;
    config.population = population;
    config.max_generations = max_generations;
    config.stall_generations = stall;
    config.seed = seed;
    return search(config);
  }

  /// Simulated runtime of the program under `plan`.
  double measured_time(const FusionPlan& plan) {
    const FusedProgram fused = apply_fusion(checker, plan);
    double total = 0.0;
    for (const LaunchDescriptor& d : fused.launches) {
      total += sim.run(expansion.program, d).time_s;
    }
    return total;
  }

  double baseline_time() { return sim.program_time(expansion.program); }
};

/// Fig. 7/8 style report: per-new-kernel measured / projected / original
/// sum on K20X, in increasing measured order, with the unproductive count.
inline void report_app_new_kernels(Program program, int population,
                                   int max_generations, std::uint64_t seed) {
  BenchPipeline pipe(std::move(program), DeviceSpec::k20x());
  HggaConfig config;
  config.population = population;
  config.max_generations = max_generations;
  config.stall_generations = std::max(40, max_generations / 4);
  config.seed = seed;
  const SearchResult result = pipe.search(config);
  write_bench_metrics("app_" + pipe.original.name(),
                      bench_metrics_json("report_app_new_kernels",
                                         pipe.original.name(), result));

  std::cout << "\nBest solution: " << result.best.fused_kernel_count() << " of "
            << pipe.expansion.program.num_kernels() << " kernels fused into "
            << result.best.fused_group_count() << " new kernels ("
            << result.best.num_groups() << " launches total)\n\n";

  const FusedProgram fused = apply_fusion(pipe.checker, result.best);
  struct Row {
    std::string name;
    std::size_t members;
    double measured, projected, original;
  };
  std::vector<Row> rows;
  int unproductive = 0;
  for (const LaunchDescriptor& d : fused.launches) {
    if (!d.is_fused()) continue;
    Row r;
    r.name = strprintf("F%zu", rows.size() + 1);
    r.members = d.members.size();
    r.measured = pipe.sim.run(pipe.expansion.program, d).time_s;
    r.projected = pipe.model.project(pipe.expansion.program, d).time_s;
    r.original = pipe.sim.original_sum(pipe.expansion.program, d.members);
    if (r.measured >= r.original) ++unproductive;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.measured < b.measured; });

  TextTable table({"new kernel", "members", "measured", "projected",
                   "original sum", "speedup"});
  RunningStats err;
  for (const Row& r : rows) {
    table.add(r.name, static_cast<long>(r.members), human_time(r.measured),
              human_time(r.projected), human_time(r.original),
              fixed(r.original / r.measured, 2) + "x");
    err.add(std::abs(r.projected / r.measured - 1.0));
  }
  std::cout << table;
  std::cout << "\n" << unproductive << " of " << rows.size()
            << " new kernels are unproductive (measured >= original sum); "
            << "mean |projection error| " << fixed(100 * err.mean(), 1) << "%\n";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==================================================================\n";
}

}  // namespace kf::bench
