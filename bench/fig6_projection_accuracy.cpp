// Fig. 6 — measured vs. projected runtime of fused kernels across the test
// suite (thread load 8), for the Roofline model, the simple model and the
// proposed model, on K20X (DP) and GTX 750 Ti (SP).
//
// For each suite benchmark we search for a plan, then compare each fused
// kernel's simulated ("measured") runtime against the three projections.
// Shape checks from the paper: the proposed model stays within a tight
// band of the measurement as kernel count grows; Roofline and the simple
// model are systematically optimistic; accuracy on Maxwell improves when
// fewer arrays keep SMEM pressure low.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Fig. 6: Measured and projected runtime (thread load = 8)",
                      "paper Fig. 6");

  for (const bool maxwell : {false, true}) {
    const DeviceSpec device = maxwell ? DeviceSpec::gtx750ti() : DeviceSpec::k20x();
    std::cout << "\n--- " << device.name << " ---\n\n";
    TextTable table({"kernels", "arrays", "fused", "measured(sum)", "roofline",
                     "simple", "proposed", "roof err", "simple err", "prop err"});
    RunningStats prop_err;
    RunningStats roof_err;
    RunningStats simple_err;
    const int max_kernels = small ? 40 : 100;
    for (int kernels = 10; kernels <= max_kernels; kernels += small ? 10 : 10) {
      TestSuiteConfig cfg;
      cfg.kernels = kernels;
      cfg.arrays = 2 * kernels;
      cfg.thread_load = 8;
      cfg.seed = 600 + static_cast<std::uint64_t>(kernels);
      cfg.grid = GridDims{512, 256, 32};
      // The paper reports the GTX 750 Ti in single precision (§IV).
      Program program = make_testsuite_program(cfg);
      if (maxwell) program = program.with_precision(4);
      bench::BenchPipeline pipe(std::move(program), device);
      const RooflineModel roofline(device);
      const SimpleModel simple(pipe.expansion.program, pipe.sim);

      const SearchResult result =
          pipe.search(60, small ? 100 : 250, small ? 30 : 70,
                      900 + static_cast<std::uint64_t>(kernels));
      const FusedProgram fused = apply_fusion(pipe.checker, result.best);

      double measured = 0;
      double t_roof = 0;
      double t_simple = 0;
      double t_prop = 0;
      int fused_count = 0;
      for (const LaunchDescriptor& d : fused.launches) {
        if (!d.is_fused()) continue;
        ++fused_count;
        measured += pipe.sim.run(pipe.expansion.program, d).time_s;
        t_roof += roofline.project(pipe.expansion.program, d).time_s;
        t_simple += simple.project(pipe.expansion.program, d).time_s;
        t_prop += pipe.model.project(pipe.expansion.program, d).time_s;
      }
      if (fused_count == 0) continue;
      const double re = t_roof / measured - 1.0;
      const double se = t_simple / measured - 1.0;
      const double pe = t_prop / measured - 1.0;
      roof_err.add(std::abs(re));
      simple_err.add(std::abs(se));
      prop_err.add(std::abs(pe));
      table.add(kernels, cfg.arrays, fused_count, human_time(measured),
                human_time(t_roof), human_time(t_simple), human_time(t_prop),
                fixed(100 * re, 1) + "%", fixed(100 * se, 1) + "%",
                fixed(100 * pe, 1) + "%");
    }
    std::cout << table;
    std::cout << "\nMean |error| vs measured: roofline "
              << fixed(100 * roof_err.mean(), 1) << "%, simple "
              << fixed(100 * simple_err.mean(), 1) << "%, proposed "
              << fixed(100 * prop_err.mean(), 1) << "%\n";
  }

  std::cout << "\nShape check (paper Fig. 6): the proposed model tracks the\n"
               "measurement far more tightly than Roofline/simple, whose\n"
               "optimistic projections are the false-positive source §IV\n"
               "describes.\n";
  return 0;
}
