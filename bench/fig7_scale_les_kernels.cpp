// Fig. 7 — measured, projected, and original-sum runtime of the new
// kernels in SCALE-LES on K20X, in increasing order of execution time.
//
// Paper shape: 117 of 142 kernels fuse into 38 new kernels (~3 originals
// per new kernel); 4 of the 38 are unproductive (measured above the
// original sum), all sharing high pivot thread loads; the projection
// tracks the measurement closely for the rest.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Fig. 7: New-kernel runtimes in SCALE-LES (K20X)",
                      "paper Fig. 7 and §VI-D.2");
  bench::report_app_new_kernels(scale_les(), 100, small ? 150 : 800, 0xf16 + 7);
  std::cout << "\nPaper: 117/142 kernels -> 38 new kernels, 4 unproductive;\n"
               "unproductive kernels share high thread load on the pivot\n"
               "(register pressure).\n";
  return 0;
}
