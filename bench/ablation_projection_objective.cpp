// Ablation — what happens when the search objective is a weaker projection
// model (the paper's §IV claim: Roofline/simple objectives flood the search
// with false positives — fusions that project well but do not speed up).
//
// The same HGGA runs with each model as its objective; every resulting plan
// is then *measured* on the simulator. Reported: realised speedup and the
// false-positive count (chosen fused kernels whose measured time exceeds
// their original sum).
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Ablation: projection model as search objective",
                      "the §IV false-positive argument and Fig. 6");

  TextTable table({"workload", "objective", "projected speedup",
                   "measured speedup", "false positives"});

  struct Load {
    std::string name;
    Program program;
  };
  std::vector<Load> loads;
  loads.push_back({"rk18", scale_les_rk18()});
  {
    TestSuiteConfig cfg;
    cfg.kernels = small ? 20 : 30;
    cfg.arrays = 2 * cfg.kernels;
    cfg.thread_load = 8;
    cfg.seed = 8800;
    cfg.grid = GridDims{512, 256, 32};
    loads.push_back({"suite " + testsuite_id(cfg), make_testsuite_program(cfg)});
  }

  for (const Load& load : loads) {
    const ExpansionResult expansion = expand_arrays(load.program);
    const DeviceSpec device = DeviceSpec::k20x();
    const TimingSimulator sim(device);
    const LegalityChecker checker(expansion.program, device);

    const RooflineModel roofline(device);
    const SimpleModel simple(expansion.program, sim);
    const ProposedModel proposed(device);
    const ProjectionModel* models[] = {&roofline, &simple, &proposed};

    for (const ProjectionModel* model : models) {
      const Objective objective(checker, *model, sim);
      HggaConfig cfg;
      cfg.population = 60;
      cfg.max_generations = small ? 120 : 300;
      cfg.stall_generations = small ? 40 : 90;
      cfg.seed = 0xab1a;
      const SearchResult result = Hgga(objective, cfg).run();

      const FusedProgram fused = apply_fusion(checker, result.best);
      double measured = 0;
      int false_positives = 0;
      for (const LaunchDescriptor& d : fused.launches) {
        const double t = sim.run(expansion.program, d).time_s;
        measured += t;
        if (d.is_fused() && t >= sim.original_sum(expansion.program, d.members)) {
          ++false_positives;
        }
      }
      const double baseline = sim.program_time(expansion.program);
      table.add(load.name, model->name(),
                fixed(result.baseline_cost_s / result.best_cost_s, 2) + "x",
                fixed(baseline / measured, 2) + "x",
                static_cast<long>(false_positives));
    }
  }
  std::cout << table;
  std::cout << "\nShape check: the Roofline objective promises the largest\n"
               "projected gains but realises the least (and admits the most\n"
               "false-positive fusions); the proposed model's projected and\n"
               "measured speedups agree.\n";
  return 0;
}
