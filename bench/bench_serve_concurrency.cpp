// Worker-pool serving throughput: serial replay vs. the concurrent
// ServeEngine on a warmed-store workload.
//
// The concurrency PR's contract is that the worker pool scales the
// steady-state (store-hit) serving path: a store hit re-validates and
// re-costs a stored plan — pure CPU work over read-mostly shared state
// (shared_mutex store reads, per-context call_once, atomic stats) — so N
// workers over the bounded queue should approach Nx a single worker. This
// bench warms ONE shared store, replays the same request stream serially
// and through the engine interleaved best-of-N, checks the responses are
// bit-identical in submission order (replay stability), and reports the
// speedup. With --min-speedup S > 0 it fails below S; the default 0 keeps
// local runs on small machines report-only — CI passes the committed
// baseline contract (bench/baselines/serve_concurrency_baseline.json).
//
// The JSON mirror (BENCH_serve_concurrency.json) feeds the CI perf-smoke job.
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/plan_server.hpp"
#include "serve/serve_engine.hpp"
#include "store/plan_store.hpp"

namespace kf::bench {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/kf_bench_serve_conc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

int run(int argc, char** argv) {
  int workers = 8;
  double min_speedup = 0.0;  // report-only unless a gate is requested
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0) workers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--min-speedup") == 0)
      min_speedup = std::atof(argv[i + 1]);
  }
  if (workers < 1) workers = 1;

  print_header("Worker-pool serving throughput (serial vs. concurrent engine)",
               "the serving engine's linear-scaling contract on store hits");

  // Same application-scale program as the tracing bench: a 256-kernel
  // test-suite instance keeps the per-request work (validate + re-cost a
  // real plan) representative of the paper's apps, not an empty loop.
  TestSuiteConfig suite;
  suite.kernels = 256;
  suite.arrays = 512;
  suite.seed = 7;
  const Program program = make_testsuite_program(suite);
  const std::vector<DeviceSpec> devices = {DeviceSpec::k20x(),
                                           DeviceSpec::k40()};
  const long requests = small_scale() ? 200 : 1000;
  const int reps = small_scale() ? 3 : 5;

  // ONE shared store, warmed once: the warming search is deadline-bounded
  // (anytime), so independent stores could legally hold different plans and
  // the bit-identical check would compare search nondeterminism instead of
  // scheduling. Sharing means both loops replay hits on the same plans.
  PlanStore store({.dir = fresh_dir("shared"), .durable = false});
  PlanServer server(store, PlanServerConfig{});
  for (const DeviceSpec& d : devices) server.serve(program, d);

  double serial_best_s = 1e300;
  double pool_best_s = 1e300;
  std::vector<std::string> serial_plans;
  std::vector<std::string> pool_plans;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave serial and pooled runs so drift (thermal, noisy
    // neighbours) hits both evenly.
    {
      serial_plans.clear();
      Stopwatch watch;
      for (long i = 0; i < requests; ++i) {
        const ServeResult r = server.serve(
            program, devices[static_cast<std::size_t>(i) % devices.size()]);
        serial_plans.push_back(r.plan.to_string() + "|" + to_string(r.rung));
      }
      const double secs = watch.elapsed_s();
      if (secs < serial_best_s) serial_best_s = secs;
    }
    {
      pool_plans.clear();
      ServeEngine engine(
          server,
          ServeEngineConfig{.workers = workers,
                            .queue_capacity = static_cast<std::size_t>(
                                std::max<long>(requests, 64)),
                            .shed_on_full = false});
      std::vector<std::future<ServeResult>> futures;
      futures.reserve(static_cast<std::size_t>(requests));
      Stopwatch watch;
      for (long i = 0; i < requests; ++i)
        futures.push_back(engine.submit(
            program, devices[static_cast<std::size_t>(i) % devices.size()]));
      for (auto& f : futures) {
        const ServeResult r = f.get();
        pool_plans.push_back(r.plan.to_string() + "|" + to_string(r.rung));
      }
      const double secs = watch.elapsed_s();
      engine.drain();
      if (secs < pool_best_s) pool_best_s = secs;
    }
  }

  const double speedup = serial_best_s / pool_best_s;
  const bool identical = serial_plans == pool_plans;
  const unsigned hw = std::thread::hardware_concurrency();

  TextTable table({"configuration", "best-of-" + std::to_string(reps), "req/s",
                   "speedup"});
  table.add("serial (1 worker)", human_time(serial_best_s),
            fixed(static_cast<double>(requests) / serial_best_s, 0), "--");
  table.add("pool (" + std::to_string(workers) + " workers)",
            human_time(pool_best_s),
            fixed(static_cast<double>(requests) / pool_best_s, 0),
            fixed(speedup, 2) + "x");
  std::cout << table;
  std::cout << "\nresponses bit-identical to serial replay: "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "hardware threads: " << hw << ", speedup gate: "
            << (min_speedup > 0.0 ? fixed(min_speedup, 2) + "x"
                                  : std::string("none (report-only)"))
            << "\n";

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "serve_concurrency");
  doc.set("program", testsuite_id(suite));
  doc.set("requests", requests);
  doc.set("reps", static_cast<long>(reps));
  doc.set("workers", static_cast<long>(workers));
  doc.set("hardware_threads", static_cast<long>(hw));
  doc.set("serial_best_s", serial_best_s);
  doc.set("pool_best_s", pool_best_s);
  doc.set("speedup", speedup);
  doc.set("serial_req_per_s", static_cast<double>(requests) / serial_best_s);
  doc.set("pool_req_per_s", static_cast<double>(requests) / pool_best_s);
  doc.set("identical_outcome", identical);
  write_bench_metrics("serve_concurrency", doc);

  if (!identical) {
    std::cerr << "FAIL: pooled responses diverged from the serial replay\n";
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "FAIL: speedup " << fixed(speedup, 2) << "x at " << workers
              << " workers below the " << fixed(min_speedup, 2)
              << "x floor\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
