// Fig. 5 — search-heuristic quality and runtime on the CloverLeaf test
// suite (Table V):
//   (a) percentage of runs that find the optimal solution (verified by the
//       deterministic exhaustive search) on small benchmarks, sweeping
//       thread load and sharing-set cardinality;
//   (b) wall time to the best solution for the largest benchmarks.
#include "bench_common.hpp"

namespace {

kf::TestSuiteConfig suite(int kernels, int arrays, int load, int sharing,
                          std::uint64_t seed) {
  kf::TestSuiteConfig cfg;
  cfg.kernels = kernels;
  cfg.arrays = arrays;
  cfg.thread_load = load;
  cfg.sharing_set_size = sharing;
  cfg.seed = seed;
  cfg.grid = kf::GridDims{512, 256, 32};
  return cfg;
}

}  // namespace

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Fig. 5: Search-heuristic quality and time-to-best",
                      "paper Fig. 5a / 5b, Table V suite");

  std::cout << "\nTable V attribute ranges: kernels 10..100 (step 10), arrays\n"
               "20..200 (step 20), data copies 2..10, sharing set 2..8,\n"
               "thread load 4..12, kinship 2..5.\n";

  // ---- (a) % best solutions on small benchmarks ----
  std::cout << "\n(a) Percentage of runs finding the exhaustive optimum\n"
               "    (10 HGGA runs per benchmark, 9-kernel instances):\n\n";
  TextTable quality({"thread load", "sharing set", "optimum found", "avg gap"});
  const int runs = small ? 3 : 10;
  for (int load : {4, 8, 12}) {
    for (int sharing : {2, 4, 6, 8}) {
      const TestSuiteConfig cfg = suite(9, 18, load, sharing, 1000 + load * 10 + sharing);
      const Program program = make_testsuite_program(cfg);
      bench::BenchPipeline truth_pipe(program, DeviceSpec::k20x());
      const SearchResult truth = exhaustive_search(truth_pipe.objective);

      int hits = 0;
      RunningStats gap;
      for (int r = 0; r < runs; ++r) {
        bench::BenchPipeline pipe(program, DeviceSpec::k20x());
        HggaConfig hcfg;
        hcfg.population = small ? 60 : 100;
        hcfg.max_generations = small ? 150 : 400;
        hcfg.stall_generations = small ? 40 : 120;
        hcfg.seed = 7000 + static_cast<std::uint64_t>(r) * 131 + load;
        const SearchResult found = pipe.search(hcfg);
        // 1e-6 relative tolerance absorbs float summation-order noise
        if (found.best_cost_s <= truth.best_cost_s * (1.0 + 1e-6)) ++hits;
        gap.add(found.best_cost_s / truth.best_cost_s - 1.0);
      }
      quality.add(load, sharing,
                  fixed(100.0 * hits / runs, 0) + "%",
                  fixed(100.0 * gap.mean(), 2) + "%");
    }
  }
  std::cout << quality;
  std::cout << "\nPaper Fig. 5a: 95-100% of runs find the best solution.\n";

  // ---- (b) time to best solution on the largest benchmarks ----
  std::cout << "\n(b) Time to best solution (largest suite benchmarks):\n\n";
  TextTable timing({"kernels", "arrays", "time to best", "total time",
                    "generations", "evaluations"});
  const int max_kernels = small ? 40 : 100;
  for (int kernels = 20; kernels <= max_kernels; kernels += 20) {
    const TestSuiteConfig cfg = suite(kernels, 2 * kernels, 8, 4, 500 + kernels);
    bench::BenchPipeline pipe(make_testsuite_program(cfg), DeviceSpec::k20x());
    HggaConfig hcfg;
    hcfg.population = 100;
    hcfg.max_generations = small ? 120 : 400;
    hcfg.stall_generations = small ? 40 : 120;
    hcfg.seed = 99;
    const SearchResult result = pipe.search(hcfg);
    timing.add(kernels, 2 * kernels, human_time(result.time_to_best_s),
               human_time(result.runtime_s), result.generations, result.evaluations);
  }
  std::cout << timing;
  std::cout << "\nShape check: time-to-best grows superlinearly with kernel count\n"
               "but stays in interactive range (the paper reports minutes at\n"
               "142 kernels on a 2010 Xeon; see table6_search_performance).\n";
  return 0;
}
