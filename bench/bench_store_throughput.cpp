// Plan-store throughput: the serving path's persistence cost.
//
// The plan-service direction makes the store a per-request dependency —
// every cache hit is a get(), every search result a put() — so this bench
// measures the three operations that bound serving throughput:
//
//   put       journal append + index update, durable (fsync per commit)
//             vs buffered (tests/benches mode);
//   get       index lookup + StoredPlan copy on a populated store;
//   recover   full open — scan, CRC-validate and re-parse every record —
//             for a journal of N records, the cold-start cost of a box.
//
// The report is operations per second per mode plus the recovered-journal
// size; the JSON mirror (BENCH_store_throughput.json) feeds the CI
// perf-smoke job.
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "store/plan_store.hpp"

namespace kf::bench {
namespace {

StoredPlan synthetic_plan(std::uint64_t i) {
  StoredPlan p;
  p.key = {mix64(i * 2 + 1), mix64(i * 2 + 2)};
  p.num_kernels = 18;
  // A realistic rk18-sized plan string (6 groups of 3).
  p.plan_text =
      "{0,1,2} {3,4,5} {6,7,8} {9,10,11} {12,13,14} {15,16,17}";
  p.best_cost_s = 1.0e-3 + 1.0e-9 * static_cast<double>(i % 997);
  p.baseline_cost_s = 2.0e-3;
  return p;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/kf_bench_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct PutPhase {
  long ops = 0;
  double ops_per_s = 0.0;
};

PutPhase put_phase(bool durable, long ops) {
  const std::string dir = fresh_dir(durable ? "durable" : "buffered");
  PlanStore::Config cfg;
  cfg.dir = dir;
  cfg.durable = durable;
  PlanStore store(cfg);
  Stopwatch watch;
  for (long i = 0; i < ops; ++i) store.put(synthetic_plan(static_cast<std::uint64_t>(i)));
  PutPhase phase;
  phase.ops = ops;
  phase.ops_per_s = static_cast<double>(ops) / watch.elapsed_s();
  std::filesystem::remove_all(dir);
  return phase;
}

int run(int argc, char** argv) {
  long records = small_scale() ? 500 : 5000;
  long durable_records = small_scale() ? 50 : 400;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--records") == 0) records = std::atol(argv[i + 1]);
  }

  print_header("Plan-store throughput: put/get/recover",
               "the crash-safe plan store behind the serving path");

  // put: the durability tax is the fsync, so the two modes bracket the
  // serving write-back cost on this filesystem.
  const PutPhase buffered = put_phase(false, records);
  const PutPhase durable = put_phase(true, durable_records);

  // get + recover on a store of `records` plans.
  const std::string dir = fresh_dir("readside");
  PlanStore::Config cfg;
  cfg.dir = dir;
  cfg.durable = false;
  long journal_bytes = 0;
  {
    PlanStore store(cfg);
    for (long i = 0; i < records; ++i)
      store.put(synthetic_plan(static_cast<std::uint64_t>(i)));
    journal_bytes = store.stats().journal_bytes;
  }
  Stopwatch recover_watch;
  PlanStore store(cfg);
  const double recover_s = recover_watch.elapsed_s();

  const long get_rounds = 20;
  Stopwatch get_watch;
  long hits = 0;
  for (long round = 0; round < get_rounds; ++round) {
    for (long i = 0; i < records; ++i) {
      if (store.get(synthetic_plan(static_cast<std::uint64_t>(i)).key)) ++hits;
    }
  }
  const double gets_per_s =
      static_cast<double>(get_rounds * records) / get_watch.elapsed_s();

  // Compaction folds the journal into a snapshot; reopening after it is the
  // steady-state cold start.
  store.compact();
  Stopwatch reopen_watch;
  PlanStore reopened(cfg);
  const double reopen_compacted_s = reopen_watch.elapsed_s();

  TextTable table({"operation", "ops", "ops/s"});
  table.add("put (buffered)", buffered.ops, fixed(buffered.ops_per_s / 1e3, 1) + "k");
  table.add("put (durable)", durable.ops, fixed(durable.ops_per_s / 1e3, 1) + "k");
  table.add("get (hit)", get_rounds * records, fixed(gets_per_s / 1e6, 2) + "M");
  std::cout << table;

  std::cout << "\nrecovery: " << records << " journal records ("
            << journal_bytes / 1024 << " KiB) in " << fixed(recover_s * 1e3, 2)
            << " ms (" << fixed(static_cast<double>(records) / recover_s / 1e3, 1)
            << "k records/s); compacted reopen "
            << fixed(reopen_compacted_s * 1e3, 2) << " ms\n"
            << "durability tax: " << fixed(buffered.ops_per_s / durable.ops_per_s, 1)
            << "x puts/s buffered vs fsync-per-commit\n";

  const bool consistent =
      store.size() == static_cast<std::size_t>(records) &&
      reopened.size() == static_cast<std::size_t>(records) &&
      hits == get_rounds * records && reopened.recovery().clean();

  JsonValue doc = JsonValue::object();
  doc.set("schema", "kf-bench-metrics/v1");
  doc.set("bench", "store_throughput");
  doc.set("records", records);
  doc.set("journal_bytes", journal_bytes);
  doc.set("put_buffered_per_s", buffered.ops_per_s);
  doc.set("put_durable_per_s", durable.ops_per_s);
  doc.set("get_per_s", gets_per_s);
  doc.set("recover_s", recover_s);
  doc.set("reopen_compacted_s", reopen_compacted_s);
  doc.set("consistent", consistent);
  write_bench_metrics("store_throughput", doc);

  std::filesystem::remove_all(dir);
  if (!consistent) {
    std::cerr << "FAIL: store lost or corrupted records during the bench\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kf::bench

int main(int argc, char** argv) { return kf::bench::run(argc, argv); }
