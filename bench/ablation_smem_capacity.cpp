// §VI-E.2 — the speculative architecture study: SCALE-LES fusion gains on
// hypothetical K20X variants with 128 KB and 256 KB of shared memory.
//
// Paper: running *the model* with larger capacities projects 1.56x and
// 1.65x improvements (vs. 1.35x at the real 48 KB), with the caveat that
// "the increased capacity would also imply architectural trade-off". This
// bench makes the trade-off measurable: for each capacity the search
// reruns and the chosen plan is both projected (calibrated model) and
// measured (timing simulator). Capacity demonstrably admits larger new
// kernels, but the projected-and-measured gains flatten — once SMEM stops
// binding, register pressure and on-chip traffic become the limit, which
// is the architectural trade-off the paper anticipated but could not
// quantify without an execution substrate. The hypothetical devices scale
// the block-count ceiling with capacity (otherwise Kepler's 16-blocks/SMX
// cap would idle the extra SMEM).
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("§VI-E.2 ablation: SMEM capacity vs. fusion gain (SCALE-LES)",
                      "the paper's hypothetical-architecture study");

  TextTable table({"SMEM/SMX", "projected", "measured", "new kernels",
                   "avg members", "paper(projected)"});
  const struct {
    long kb;
    const char* paper;
  } points[] = {{48, "1.35x"}, {128, "1.56x"}, {256, "1.65x"}};

  for (const auto& point : points) {
    DeviceSpec device = point.kb == 48
                            ? DeviceSpec::k20x()
                            : DeviceSpec::k20x().with_smem_capacity(point.kb * 1024);
    if (point.kb > 48) {
      device.max_blocks_per_smx =
          static_cast<int>(16 * (point.kb + 47) / 48);  // scale with capacity
    }
    bench::BenchPipeline pipe(scale_les(), device);
    HggaConfig cfg;
    cfg.population = 100;
    cfg.max_generations = small ? 150 : 600;
    cfg.stall_generations = small ? 50 : 150;
    cfg.seed = 0x53e3;
    const SearchResult result = pipe.search(cfg);
    const double before = pipe.baseline_time();
    const double after = pipe.measured_time(result.best);

    const double avg_members =
        result.best.fused_group_count()
            ? static_cast<double>(result.best.fused_kernel_count()) /
                  result.best.fused_group_count()
            : 0.0;
    table.add(human_bytes(static_cast<double>(point.kb) * 1024),
              fixed(result.projected_speedup(), 2) + "x",
              fixed(before / after, 2) + "x",
              static_cast<long>(result.best.fused_group_count()),
              fixed(avg_members, 1), point.paper);
  }
  std::cout << table;
  std::cout << "\nShape check: capacity admits visibly larger new kernels (avg\n"
               "members grows); the paper's purely-projected 1.56x/1.65x are\n"
               "not realised once the architectural trade-offs it anticipated\n"
               "(register pressure, on-chip traffic) are simulated.\n";
  return 0;
}
