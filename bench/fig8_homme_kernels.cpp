// Fig. 8 — measured, projected, and original-sum runtime of the new
// kernels in HOMME on K20X, in increasing order of execution time.
//
// Paper shape: 22 of 43 kernels fuse into 9 new kernels; 1 of the 9 is
// unproductive.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Fig. 8: New-kernel runtimes in HOMME (K20X)",
                      "paper Fig. 8 and §VI-D.2");
  bench::report_app_new_kernels(homme(), 100, small ? 120 : 500, 0xf16 + 8);
  std::cout << "\nPaper: 22/43 kernels -> 9 new kernels, 1 unproductive.\n";
  return 0;
}
