// Table VI — performance and parameters of the search algorithm on the two
// applications, plus the §III-A / §VI-C scalability commentary (search-space
// size and the cost of code-representation-based objectives).
#include <cmath>

#include "bench_common.hpp"

namespace {

// log10 of the Bell number (size of the unconstrained partition space) via
// Dobinski-style recurrence on log-scaled Bell triangle.
double log10_bell(int n) {
  std::vector<double> prev{0.0};  // log10 B(1) row start
  for (int row = 1; row < n; ++row) {
    std::vector<double> next;
    next.reserve(prev.size() + 1);
    next.push_back(prev.back());
    for (double v : prev) {
      // log10(a + b) with a = next.back(), b = v
      const double hi = std::max(next.back(), v);
      const double lo = std::min(next.back(), v);
      next.push_back(hi + std::log10(1.0 + std::pow(10.0, lo - hi)));
    }
    prev = std::move(next);
  }
  return prev.back();
}

}  // namespace

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Table VI: Performance & parameters of the search algorithm",
                      "paper Table VI and the §III-A scalability estimates");

  TextTable table({"Application", "Generations", "Population", "Evaluations",
                   "Model evals (cache misses)", "Runtime", "Projected speedup"});

  struct AppCase {
    const char* name;
    Program program;
    int max_generations;
  };
  AppCase cases[] = {{"SCALE-LES", scale_les(), small ? 150 : 2000},
                     {"HOMME", homme(), small ? 100 : 1000}};

  for (AppCase& c : cases) {
    bench::BenchPipeline pipe(std::move(c.program), DeviceSpec::k20x());
    HggaConfig cfg;
    cfg.population = 100;
    cfg.max_generations = c.max_generations;
    cfg.stall_generations = c.max_generations;  // run the full budget, as the paper did
    cfg.seed = 0x5ca1e;
    const SearchResult r = pipe.search(cfg);
    table.add(c.name, r.generations, cfg.population,
              strprintf("%.1fe6", static_cast<double>(r.evaluations) / 1e6),
              strprintf("%.2fe6", static_cast<double>(r.model_evaluations) / 1e6),
              human_time(r.runtime_s), fixed(r.projected_speedup(), 2) + "x");
  }
  std::cout << table;

  std::cout << "\nPaper: SCALE-LES 2000 generations, population 100, 5.4e6\n"
               "evaluations, 9.51 min; HOMME 1000 generations, 2.7e6\n"
               "evaluations, 6.11 min (Xeon X5670, 8 cores).\n";

  // §III-A: size of the unconstrained search space.
  std::cout << "\nSearch-space size (unconstrained set partitions):\n"
            << "  SCALE-LES (142 kernels): ~1e" << fixed(log10_bell(142), 0)
            << " partitions (paper estimates ~2.6e45 *feasible* solutions)\n"
            << "  HOMME (43 kernels):      ~1e" << fixed(log10_bell(43), 0)
            << " partitions\n";

  // §VI-C: cost of a code-representation objective (GROPHECY's MWP model
  // at 3 ms per evaluation) vs. this codeless objective.
  std::cout << "\nObjective-cost comparison (the paper's GROPHECY argument):\n"
               "  a 3 ms code-skeleton evaluation x 5.4e6 evaluations = 4.5 h\n"
               "  for *one* search run — and 2.1e39 hours for exhaustive\n"
               "  enumeration. The codeless objective above evaluates in\n"
               "  microseconds (see micro_components), which is what makes\n"
               "  population-based search feasible at 142 kernels.\n";
  return 0;
}
