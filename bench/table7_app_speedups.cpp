// Table VII — whole-application speedups after kernel fusion.
//
//   paper:            K40     K20X
//   SCALE-LES        1.35x   1.32x     (problem size 1280x32x32)
//   HOMME            1.20x   1.18x     (dycore kernels only)
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Table VII: SCALE-LES and HOMME speedups after kernel fusion",
                      "paper Table VII");

  TextTable table({"Application", "Device", "before", "after", "speedup", "paper"});
  struct Case {
    const char* name;
    Program program;
    double paper_k40;
    double paper_k20x;
  };
  Case cases[] = {{"SCALE-LES", scale_les(), 1.35, 1.32},
                  {"HOMME", homme(), 1.20, 1.18}};

  for (Case& c : cases) {
    for (const DeviceSpec& device : {DeviceSpec::k40(), DeviceSpec::k20x()}) {
      bench::BenchPipeline pipe(c.program, device);
      HggaConfig cfg;
      cfg.population = 100;
      cfg.max_generations = small ? 150 : 600;
      cfg.stall_generations = small ? 50 : 150;
      cfg.seed = 0x7ab1e7;
      const SearchResult result = pipe.search(cfg);
      const double before = pipe.baseline_time();
      const double after = pipe.measured_time(result.best);
      const double paper = device.name == "K40" ? c.paper_k40 : c.paper_k20x;
      table.add(c.name, device.name, human_time(before), human_time(after),
                fixed(before / after, 2) + "x", fixed(paper, 2) + "x");
    }
  }
  std::cout << table;
  std::cout << "\nShape checks (paper Table VII): SCALE-LES gains more than\n"
               "HOMME (denser reuse, Table I); K40 edges out K20X (more SMXs\n"
               "and bandwidth headroom). Absolute factors should land near\n"
               "the paper's 1.2x-1.35x band.\n";
  return 0;
}
