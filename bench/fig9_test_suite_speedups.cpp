// Fig. 9 — test-suite speedups after fusion (thread load 8) on Kepler
// (K20X) and Maxwell (GTX 750 Ti), sweeping kernel and array counts.
//
// Paper shape checks: Maxwell gains more than Kepler (64 KB SMEM admits
// larger new kernels and more complex fusions); fewer arrays enforce a
// stricter execution order and depress speedups, most visibly at low
// kernel counts and least on Maxwell.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  const bool small = bench::small_scale();
  bench::print_header("Fig. 9: Test-suite speedups after fusion (thread load = 8)",
                      "paper Fig. 9");

  TextTable table({"kernels", "arrays/kernel", "K20X speedup", "GTX750Ti speedup"});
  RunningStats kepler;
  RunningStats maxwell;
  const int max_kernels = small ? 40 : 60;
  for (int kernels = 20; kernels <= max_kernels; kernels += 10) {
    for (const double arrays_per_kernel : {1.0, 2.0}) {
      TestSuiteConfig cfg;
      cfg.kernels = kernels;
      cfg.arrays = std::max(8, static_cast<int>(kernels * arrays_per_kernel));
      cfg.thread_load = 8;
      cfg.seed = 4200 + static_cast<std::uint64_t>(kernels * 10 + arrays_per_kernel);
      cfg.grid = GridDims{512, 256, 32};
      const Program program = make_testsuite_program(cfg);

      double speedup[2] = {0, 0};
      int idx = 0;
      for (const DeviceSpec& device : {DeviceSpec::k20x(), DeviceSpec::gtx750ti()}) {
        // Maxwell runs in single precision, as in the paper (§IV).
        bench::BenchPipeline pipe(
            device.name == "GTX750Ti" ? program.with_precision(4) : program, device);
        const SearchResult result =
            pipe.search(60, small ? 100 : 250, small ? 30 : 70, cfg.seed);
        const double before = pipe.baseline_time();
        const double after = pipe.measured_time(result.best);
        speedup[idx++] = before / after;
      }
      kepler.add(speedup[0]);
      maxwell.add(speedup[1]);
      table.add(kernels, fixed(arrays_per_kernel, 0), fixed(speedup[0], 2) + "x",
                fixed(speedup[1], 2) + "x");
    }
  }
  std::cout << table;
  std::cout << "\nMean speedup: K20X " << fixed(kepler.mean(), 2) << "x, GTX750Ti "
            << fixed(maxwell.mean(), 2) << "x\n"
            << "Shape check (paper Fig. 9): Maxwell > Kepler on average; the\n"
               "1 array/kernel column (stricter order-of-execution) trails\n"
               "the 2 arrays/kernel column.\n";
  return 0;
}
