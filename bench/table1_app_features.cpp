// Table I — Features of different weather applications: number of kernels,
// number of arrays, and the reducible GMEM traffic bound under maximal
// legal fusion.
#include "bench_common.hpp"

int main() {
  using namespace kf;
  bench::print_header("Table I: Features of Different Weather Applications",
                      "paper Table I");

  TextTable table({"Application", "No. of Kernels", "No. of Arrays",
                   "Reducible Traffic (measured)", "Paper"});
  double worst_gap = 0.0;
  for (const WeatherAppEntry& app : weather_zoo()) {
    const ReducibleTrafficReport r = reducible_traffic(app.program);
    const double pct = 100.0 * r.reducible_fraction;
    worst_gap = std::max(worst_gap, std::abs(pct - app.paper_reducible_pct));
    table.add(app.name, app.program.num_kernels(), app.program.num_arrays(),
              fixed(pct, 1) + "%", fixed(app.paper_reducible_pct, 0) + "%");
  }
  std::cout << table;
  std::cout << "\nShape check: SCALE-LES and COSMO should lead (densest reuse),\n"
               "ASUCA should trail (already hand-fused port). Worst absolute\n"
               "gap to the paper's column: "
            << fixed(worst_gap, 1) << " percentage points.\n";
  return 0;
}
